// Package derand makes Theorem 3 executable on instances small enough to
// enumerate. The theorem converts any RandLOCAL algorithm A_Rand for an LCL
// into a DetLOCAL algorithm by fixing the random bits: each vertex's bit
// string becomes φ(ID(v)) for a function φ chosen so that the resulting
// deterministic algorithm A_Det[φ] errs on NO member of G_{n,Δ}, the set of
// all n-vertex, max-degree-Δ graphs with unique IDs. The union bound shows
// a good φ exists whenever A_Rand's failure probability is below
// 1/|G_{n,Δ}| — the paper takes failure 1/N with N = 2^{n²} ≫ |G_{n,Δ}|.
//
// Here every object of that proof is materialized:
//
//   - EnumerateInstances lists G_{n,Δ} for tiny n (all edge subsets with
//     the degree bound × all injective ID assignments);
//   - ExactFailure computes an algorithm's failure probability on an
//     instance *exactly*, by enumerating all joint random-bit assignments;
//   - SearchPhi scans bit functions φ in lexicographic order (exhaustively
//     for tiny bit budgets, or until the first good one) and verifies that
//     A_Det[φ*] errs on zero instances — the theorem's conclusion, checked
//     mechanically rather than asymptotically.
//
// The demonstration algorithm is greedy MIS by random priority: each
// vertex draws B random bits and the greedy order they induce is executed
// distributedly. It fails exactly when an adjacent pair draws equal words
// and neither is eliminated by a third joiner — so more bits mean smaller
// failure probability and more abundant good φ's, the tradeoff the
// theorem's union bound quantifies; any φ injective on the ID space is
// good, and the lexicographic search finds the first one.
package derand

import (
	"fmt"
	"math"

	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/lcl"
	"locality/internal/sim"
)

// Instance is one member of G_{n,Δ}: a labeled graph plus unique IDs.
type Instance struct {
	G   *graph.Graph
	IDs ids.Assignment
}

// EnumerateInstances lists all graphs on n vertices with maximum degree at
// most maxDeg, each combined with every injective ID assignment from
// {1..idSpace}. It panics for n > 5 (the enumeration is exponential; the
// theorem's demonstration lives at tiny n by design).
func EnumerateInstances(n, maxDeg, idSpace int) []Instance {
	if n > 5 {
		panic(fmt.Sprintf("derand: EnumerateInstances(n=%d) is intractable; use n <= 5", n))
	}
	if idSpace < n {
		panic(fmt.Sprintf("derand: idSpace %d < n %d cannot give unique IDs", idSpace, n))
	}
	// All vertex pairs.
	var pairs [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	var graphs []*graph.Graph
	for mask := 0; mask < 1<<len(pairs); mask++ {
		b := graph.NewBuilder(n)
		for i, p := range pairs {
			if mask&(1<<i) != 0 {
				b.AddEdge(p[0], p[1])
			}
		}
		g := b.MustBuild()
		if g.MaxDegree() <= maxDeg {
			graphs = append(graphs, g)
		}
	}
	assignments := injections(n, idSpace)
	instances := make([]Instance, 0, len(graphs)*len(assignments))
	for _, g := range graphs {
		for _, a := range assignments {
			instances = append(instances, Instance{G: g, IDs: a})
		}
	}
	return instances
}

// injections enumerates all injective maps [n] -> {1..space}.
func injections(n, space int) []ids.Assignment {
	var out []ids.Assignment
	cur := make(ids.Assignment, n)
	used := make([]bool, space+1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out = append(out, append(ids.Assignment(nil), cur...))
			return
		}
		for id := 1; id <= space; id++ {
			if used[id] {
				continue
			}
			used[id] = true
			cur[i] = uint64(id)
			rec(i + 1)
			used[id] = false
		}
	}
	rec(0)
	return out
}

// Algorithm is a bit-string-driven algorithm in the sense of the theorem:
// each vertex consumes exactly Bits random bits, delivered through
// Env.Input as a BitInput; the machine itself is deterministic.
type Algorithm struct {
	// Bits is r(n,Δ): the per-vertex random bit budget.
	Bits int
	// Factory builds the per-node machine.
	Factory sim.Factory
	// Validate judges the outputs on an instance (nil error = solved).
	Validate func(inst Instance, outputs []any) error
}

// BitInput carries a vertex's fixed bit string (low bits of Word).
type BitInput struct {
	Word uint64
}

// runWithBits executes the algorithm with the given per-vertex bit words.
func runWithBits(alg Algorithm, inst Instance, words []uint64) ([]any, error) {
	inputs := make([]any, inst.G.N())
	for v := range inputs {
		inputs[v] = BitInput{Word: words[v]}
	}
	res, err := sim.Run(inst.G, sim.Config{IDs: inst.IDs, Inputs: inputs}, alg.Factory)
	if err != nil {
		return nil, err
	}
	return res.Outputs, nil
}

// ExactFailure computes the algorithm's exact failure probability on the
// instance under independent uniform bit strings, by enumerating all
// 2^(Bits·n) joint assignments. Panics if that exceeds 2^24 cases.
func ExactFailure(alg Algorithm, inst Instance) float64 {
	n := inst.G.N()
	total := alg.Bits * n
	if total > 24 {
		panic(fmt.Sprintf("derand: ExactFailure over 2^%d assignments is intractable", total))
	}
	fails := 0
	words := make([]uint64, n)
	mask := uint64(1)<<alg.Bits - 1
	for joint := uint64(0); joint < 1<<total; joint++ {
		x := joint
		for v := 0; v < n; v++ {
			words[v] = x & mask
			x >>= alg.Bits
		}
		outputs, err := runWithBits(alg, inst, words)
		if err != nil {
			panic(fmt.Sprintf("derand: run failed: %v", err))
		}
		if alg.Validate(inst, outputs) != nil {
			fails++
		}
	}
	return float64(fails) / float64(uint64(1)<<total)
}

// Phi is a bit function φ: ID -> bit word; index 0 is unused (IDs are
// 1-based).
type Phi []uint64

// applyPhi runs A_Det[φ] on the instance.
func applyPhi(alg Algorithm, inst Instance, phi Phi) ([]any, error) {
	words := make([]uint64, inst.G.N())
	for v, id := range inst.IDs {
		words[v] = phi[id]
	}
	return runWithBits(alg, inst, words)
}

// IsGood reports whether A_Det[φ] solves EVERY instance.
func IsGood(alg Algorithm, instances []Instance, phi Phi) bool {
	for _, inst := range instances {
		outputs, err := applyPhi(alg, inst, phi)
		if err != nil {
			return false
		}
		if alg.Validate(inst, outputs) != nil {
			return false
		}
	}
	return true
}

// SearchResult reports a φ search.
type SearchResult struct {
	// Found is the lexicographically first good φ (nil if none in range).
	Found Phi
	// Tried counts the φ candidates examined.
	Tried int
	// Exhausted is true when the whole φ space was scanned.
	Exhausted bool
	// BadCount counts bad φ's among those examined (meaningful when
	// Exhausted).
	BadCount int
}

// SearchPhi scans φ candidates in lexicographic order. With idSpace·Bits
// small enough (≤ maxScan budget) it scans the whole space and reports the
// exact bad fraction; otherwise it stops at the first good φ.
func SearchPhi(alg Algorithm, instances []Instance, idSpace, maxScan int) SearchResult {
	bitsTotal := idSpace * alg.Bits
	var spaceSize uint64
	exhaustive := bitsTotal <= 30
	if exhaustive {
		spaceSize = uint64(1) << bitsTotal
		if spaceSize > uint64(maxScan) {
			exhaustive = false
		}
	}
	res := SearchResult{Exhausted: exhaustive}
	mask := uint64(1)<<alg.Bits - 1
	decode := func(x uint64) Phi {
		phi := make(Phi, idSpace+1)
		for id := 1; id <= idSpace; id++ {
			phi[id] = x & mask
			x >>= alg.Bits
		}
		return phi
	}
	limit := uint64(maxScan)
	if exhaustive {
		limit = spaceSize
	}
	for x := uint64(0); x < limit; x++ {
		phi := decode(x)
		res.Tried++
		if IsGood(alg, instances, phi) {
			if res.Found == nil {
				res.Found = phi
			}
			if !exhaustive {
				return res
			}
		} else {
			res.BadCount++
		}
	}
	return res
}

// PriorityMIS returns the demonstration algorithm: iterated greedy MIS by
// bit-word priority. Each phase, an undecided vertex joins if its word
// strictly beats every undecided neighbor's, and drops out next to a
// joiner. With pairwise-distinct words along every edge the greedy order
// completes within n phases; the only failure mode is a blocking adjacent
// tie — whose probability shrinks as bits grow, and which a good φ (in
// particular any φ injective on the ID space) eliminates entirely.
func PriorityMIS(bits int) Algorithm {
	return Algorithm{
		Bits: bits,
		Factory: func() sim.Machine {
			return &prioMIS{}
		},
		Validate: func(inst Instance, outputs []any) error {
			labels := make([]any, len(outputs))
			copy(labels, outputs)
			return lcl.MIS().Validate(lcl.Instance{G: inst.G}, labels)
		},
	}
}

type prioMIS struct {
	env  sim.Env
	word uint64
	st   int // 0 undecided, 1 in, 2 out
}

var _ sim.Machine = (*prioMIS)(nil)

// prioMsg is the per-phase broadcast.
type prioMsg struct {
	Word uint64
	St   int
}

func (m *prioMIS) Init(env sim.Env) {
	m.env = env
	bi, ok := env.Input.(BitInput)
	if !ok {
		panic(fmt.Sprintf("derand: input is %T, want BitInput", env.Input))
	}
	m.word = bi.Word
}

func (m *prioMIS) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	if m.st == 0 && step > 1 {
		beaten := false
		for _, msg := range recv {
			if msg == nil {
				continue
			}
			pm := msg.(prioMsg)
			switch {
			case pm.St == 1:
				m.st = 2
			case pm.St == 0 && pm.Word >= m.word:
				beaten = true
			}
		}
		if m.st == 0 && !beaten {
			m.st = 1
		}
	}
	if step > m.env.N+2 || m.st != 0 && step > 1 {
		// Decided vertices announce once more and halt; the budget bound
		// n+2 guarantees termination even with blocking ties (the stuck
		// vertices output "undecided" = out, and the verifier reports the
		// maximality violation).
		return sim.Broadcast(m.env.Degree, prioMsg{Word: m.word, St: m.st}), true
	}
	return sim.Broadcast(m.env.Degree, prioMsg{Word: m.word, St: m.st}), false
}

func (m *prioMIS) Output() any { return m.st == 1 }

// Corollary1Overhead quantifies Corollary 1: derandomizing via Theorem 3
// evaluates the randomized algorithm at N = 2^(n²) instead of n, so a
// 2^O(log* n)-time algorithm pays only the additive difference
// log*(2^(n²)) - log*(n) <= 2 — no asymptotic penalty. The function returns
// that difference for a given n (as a float argument to allow huge n).
func Corollary1Overhead(n float64) int {
	if n < 1 {
		panic("derand: Corollary1Overhead needs n >= 1")
	}
	// log2(N) = n², so log*(N) = 1 + log*(n²) = 1 + log*(2·log2 n) steps
	// beyond... compute directly: iterate log2 starting from n² in the
	// exponent: log*(2^(n²)) = 1 + log*(n²).
	logStarN := logStar(n)
	logStarBig := 1 + logStar(n*n)
	return logStarBig - logStarN
}

func logStar(x float64) int {
	if math.IsInf(x, 1) {
		// One extra log2 level beyond the largest finite float64: treat
		// Inf as 2^1024 (this only affects the overhead bound, which is
		// insensitive to a single level at these magnitudes).
		return 1 + logStar(1024)
	}
	count := 0
	for x > 1 {
		x = math.Log2(x)
		count++
	}
	return count
}
