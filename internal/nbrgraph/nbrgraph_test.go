package nbrgraph_test

import (
	"testing"

	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/lcl"
	"locality/internal/nbrgraph"
	"locality/internal/rng"
	"locality/internal/sim"
)

func TestBuildCounts(t *testing.T) {
	// B_0(m): tuples = single IDs (m of them); edges = all ordered pairs
	// of distinct IDs, deduplicated = complete graph K_m.
	ng := nbrgraph.Build(0, 5)
	if len(ng.Tuples) != 5 {
		t.Fatalf("B_0(5) has %d tuples, want 5", len(ng.Tuples))
	}
	if ng.G.M() != 10 {
		t.Fatalf("B_0(5) has %d edges, want C(5,2)=10", ng.G.M())
	}
	// B_1(5): 5·4·3 = 60 tuples; edges from 5·4·3·2 = 120 ordered
	// 4-tuples; each edge found twice? No: each 4-tuple gives one
	// (window, next-window) pair; pairs are distinct unordered edges.
	ng = nbrgraph.Build(1, 5)
	if len(ng.Tuples) != 60 {
		t.Fatalf("B_1(5) has %d tuples, want 60", len(ng.Tuples))
	}
	if ng.G.M() != 120 {
		t.Fatalf("B_1(5) has %d edges, want 120", ng.G.M())
	}
}

func TestZeroRoundColoringThreshold(t *testing.T) {
	// B_0(m) = K_m: a 0-round k-coloring algorithm exists iff m <= k.
	res := nbrgraph.AlgorithmExists(0, 3, 3, 1<<20)
	if !res.Decided || !res.Colorable {
		t.Error("0-round 3-coloring with 3 IDs should exist")
	}
	res = nbrgraph.AlgorithmExists(0, 4, 3, 1<<20)
	if !res.Decided || res.Colorable {
		t.Error("0-round 3-coloring with 4 IDs must NOT exist (Linial lower bound, base case)")
	}
}

func TestTwoColoringImpossibleAtAnyCheckableRadius(t *testing.T) {
	// The Ω(n) side of the Theorem 7 dichotomy, machine-checked: B_t(m)
	// contains odd closed walks, so no t-round 2-coloring algorithm exists.
	for _, tc := range []struct{ t, m int }{{0, 4}, {0, 6}, {1, 5}, {1, 6}} {
		res := nbrgraph.AlgorithmExists(tc.t, tc.m, 2, 1<<22)
		if !res.Decided {
			t.Fatalf("t=%d m=%d: search exhausted budget", tc.t, tc.m)
		}
		if res.Colorable {
			t.Errorf("t=%d m=%d: 2-coloring algorithm should not exist", tc.t, tc.m)
		}
	}
}

func TestOneRoundThreeColoring(t *testing.T) {
	// With t=1 and small ID spaces, 3-coloring becomes possible; the
	// engine both certifies existence and synthesizes the algorithm.
	res := nbrgraph.AlgorithmExists(1, 5, 3, 1<<24)
	if !res.Decided {
		t.Skip("budget exhausted; enlarge nodeBudget")
	}
	t.Logf("1-round 3-coloring with 5 IDs exists: %v (%d nodes)", res.Colorable, res.Nodes)
	if !res.Colorable {
		// Known from Linial's bound χ(B_1(m)) >= log log m-ish: small m
		// should be colorable; if not, that is itself a finding — record
		// rather than fail, but the synthesized-machine path below needs
		// a witness, so find the smallest workable m.
		t.Skip("B_1(5) not 3-colorable; synthesized-machine test skipped")
	}
	// Synthesize and run on every ring length 4..7 with random ID draws.
	ng := nbrgraph.Build(1, 5)
	r := rng.New(3)
	for _, n := range []int{4, 5} {
		g := graph.Ring(n)
		inputs := make([]any, n)
		for v := 0; v < n; v++ {
			for p, h := range g.Ports(v) {
				if h.To == (v+1)%n {
					inputs[v] = nbrgraph.SuccPort{Port: p}
				}
			}
		}
		for trial := 0; trial < 20; trial++ {
			// Draw distinct IDs from 1..5.
			perm := r.Perm(5)
			asg := make(ids.Assignment, n)
			for v := 0; v < n; v++ {
				asg[v] = uint64(perm[v] + 1)
			}
			res, err := sim.Run(g, sim.Config{IDs: asg, Inputs: inputs}, ng.Synthesize(resWitness(t, ng)))
			if err != nil {
				t.Fatal(err)
			}
			colors := sim.IntOutputs(res)
			if err := lcl.Coloring(3).Validate(lcl.Instance{G: g}, lcl.IntLabels(colors)); err != nil {
				t.Fatalf("n=%d trial %d: synthesized algorithm failed: %v", n, trial, err)
			}
			if res.Rounds != 1 {
				t.Fatalf("synthesized algorithm used %d rounds, want 1", res.Rounds)
			}
		}
	}
}

// resWitness recomputes the witness coloring (helper to keep the test
// readable).
func resWitness(t *testing.T, ng *nbrgraph.NbrGraph) []int {
	t.Helper()
	res := nbrgraph.Colorable(ng.G, 3, 1<<24)
	if !res.Decided || !res.Colorable {
		t.Fatal("witness vanished")
	}
	return res.Coloring
}

func TestColorableOnKnownGraphs(t *testing.T) {
	// Sanity of the decision procedure itself.
	tests := []struct {
		name string
		g    *graph.Graph
		k    int
		want bool
	}{
		{"C5 with 2", graph.Ring(5), 2, false},
		{"C5 with 3", graph.Ring(5), 3, true},
		{"C6 with 2", graph.Ring(6), 2, true},
		{"K4 with 3", completeGraph(4), 3, false},
		{"K4 with 4", completeGraph(4), 4, true},
		{"Petersen with 3", petersen(), 3, true},
		{"path with 2", graph.Path(7), 2, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := nbrgraph.Colorable(tt.g, tt.k, 1<<22)
			if !res.Decided {
				t.Fatal("budget exhausted")
			}
			if res.Colorable != tt.want {
				t.Errorf("Colorable = %v, want %v", res.Colorable, tt.want)
			}
			if res.Colorable {
				if err := lcl.Coloring(tt.k).Validate(lcl.Instance{G: tt.g}, lcl.IntLabels(res.Coloring)); err != nil {
					t.Errorf("witness invalid: %v", err)
				}
			}
		})
	}
}

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.MustBuild()
}

func petersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)     // outer C5
		b.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		b.AddEdge(i, 5+i)
	}
	return b.MustBuild()
}

func TestBudgetExhaustionReportedHonestly(t *testing.T) {
	res := nbrgraph.Colorable(petersen(), 3, 2)
	if res.Decided {
		t.Error("2-node budget cannot decide Petersen 3-colorability")
	}
}
