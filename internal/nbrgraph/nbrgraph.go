// Package nbrgraph implements Linial's neighborhood-graph technique as an
// executable lower-bound engine for LCLs on directed rings — the mechanical
// counterpart of the dichotomy discussion around Theorem 7 and of Linial's
// Ω(log* n) bound.
//
// A deterministic t-round algorithm on directed rings with IDs drawn from
// {1..m} is exactly a function from (2t+1)-tuples of distinct IDs (the
// radius-t view) to output labels. The algorithm k-colors every ring of
// length >= 2t+2 iff the NEIGHBORHOOD GRAPH B_t(m) — vertices: the tuples;
// edges: pairs of consecutive windows (x1..x_{2t+1}) ~ (x2..x_{2t+2}) —
// is k-colorable. So:
//
//   - χ(B_t(m)) > k proves NO t-round k-coloring algorithm exists: an
//     unconditional, machine-checked LOCAL lower bound;
//   - a k-coloring of B_t(m) IS a t-round algorithm, which Synthesize
//     turns into a runnable simulator machine.
//
// Because every directed ring of odd length >= 2t+2 with distinct IDs maps
// to a closed odd walk in B_t(m), B_t(m) is never bipartite (for m >=
// 2t+3), which mechanically proves the Ω(n)/"no t-round algorithm for any
// t" side of the 2-coloring dichotomy; 3-colorability kicks in only once t
// grows like log* m, Linial's bound.
package nbrgraph

import (
	"fmt"
	"sort"

	"locality/internal/graph"
	"locality/internal/sim"
)

// Tuple is a view: 2t+1 distinct IDs in ring order.
type Tuple []int

// key encodes a tuple for map lookup.
func (tp Tuple) key() string {
	b := make([]byte, 0, len(tp)*2)
	for _, x := range tp {
		b = append(b, byte(x>>8), byte(x))
	}
	return string(b)
}

// NbrGraph is the neighborhood graph B_t(m) with its tuple index.
type NbrGraph struct {
	T, M   int
	G      *graph.Graph
	Tuples []Tuple
	index  map[string]int
}

// Build enumerates B_t(m). It panics when the tuple count would exceed
// 200000 (the engine is for small parameters by design).
func Build(t, m int) *NbrGraph {
	w := 2*t + 1
	if m < w+1 {
		panic(fmt.Sprintf("nbrgraph: need m >= %d for %d-round views plus an extension", w+1, t))
	}
	count := 1
	for i := 0; i < w; i++ {
		count *= m - i
		if count > 200000 {
			panic(fmt.Sprintf("nbrgraph: B_%d(%d) has over 200000 tuples", t, m))
		}
	}
	ng := &NbrGraph{T: t, M: m, index: make(map[string]int, count)}
	// Enumerate ordered tuples of distinct IDs.
	cur := make(Tuple, 0, w)
	used := make([]bool, m+1)
	var rec func()
	rec = func() {
		if len(cur) == w {
			tp := append(Tuple(nil), cur...)
			ng.index[tp.key()] = len(ng.Tuples)
			ng.Tuples = append(ng.Tuples, tp)
			return
		}
		for id := 1; id <= m; id++ {
			if used[id] {
				continue
			}
			used[id] = true
			cur = append(cur, id)
			rec()
			cur = cur[:len(cur)-1]
			used[id] = false
		}
	}
	rec()
	// Edges: windows (x1..x_w) ~ (x2..x_{w+1}) for every (w+1)-tuple of
	// distinct IDs. Deduplicate (u < v ordering can repeat when w = 1...
	// it cannot: consecutive windows of distinct tuples differ).
	b := graph.NewBuilder(len(ng.Tuples))
	seen := make(map[[2]int]struct{})
	for u, tp := range ng.Tuples {
		// Extend on the right by any unused ID.
		inTuple := make(map[int]bool, w)
		for _, x := range tp {
			inTuple[x] = true
		}
		for id := 1; id <= m; id++ {
			if inTuple[id] {
				continue
			}
			next := append(append(Tuple(nil), tp[1:]...), id)
			v := ng.index[next.key()]
			if u == v {
				continue // impossible for distinct-ID tuples, but be safe
			}
			k := [2]int{u, v}
			if u > v {
				k = [2]int{v, u}
			}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			b.AddEdge(k[0], k[1])
		}
	}
	ng.G = b.MustBuild()
	return ng
}

// ColorResult reports a colorability decision.
type ColorResult struct {
	// Decided is false when the search hit its node budget.
	Decided bool
	// Colorable is meaningful only when Decided.
	Colorable bool
	// Coloring holds a witness k-coloring (1-based) when Colorable.
	Coloring []int
	// Nodes counts search-tree nodes visited.
	Nodes int
}

// Colorable decides whether g is k-colorable by backtracking with a
// largest-degree-first order, greedy symmetry breaking, and a node budget.
func Colorable(g *graph.Graph, k, nodeBudget int) ColorResult {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.Degree(order[a]) > g.Degree(order[b]) })
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	colors := make([]int, n) // 0 = unassigned
	res := ColorResult{}
	var rec func(i, maxUsed int) bool
	rec = func(i, maxUsed int) bool {
		if i == n {
			return true
		}
		res.Nodes++
		if res.Nodes > nodeBudget {
			return false
		}
		v := order[i]
		limit := maxUsed + 1
		if limit > k {
			limit = k
		}
		var used uint64
		for _, h := range g.Ports(v) {
			if c := colors[h.To]; c > 0 {
				used |= 1 << c
			}
		}
		for c := 1; c <= limit; c++ {
			if used&(1<<c) != 0 {
				continue
			}
			colors[v] = c
			nm := maxUsed
			if c > nm {
				nm = c
			}
			if rec(i+1, nm) {
				return true
			}
			colors[v] = 0
			if res.Nodes > nodeBudget {
				return false
			}
		}
		return false
	}
	ok := rec(0, 0)
	if res.Nodes > nodeBudget {
		return res // Decided=false
	}
	res.Decided = true
	res.Colorable = ok
	if ok {
		res.Coloring = colors
	}
	return res
}

// AlgorithmExists decides whether a t-round deterministic k-coloring
// algorithm exists on directed rings (length >= 2t+2) with ID space m.
func AlgorithmExists(t, m, k, nodeBudget int) ColorResult {
	ng := Build(t, m)
	return Colorable(ng.G, k, nodeBudget)
}

// Synthesize turns a witness coloring of B_t(m) into a runnable t-round
// machine for directed rings: collect the radius-t ID window (using the
// orientation input), look the tuple up, output its color. The machine is
// only valid on rings of length >= 2t+2 with IDs from 1..m.
func (ng *NbrGraph) Synthesize(coloring []int) sim.Factory {
	if len(coloring) != len(ng.Tuples) {
		panic("nbrgraph: coloring length mismatch")
	}
	return func() sim.Machine {
		return &synth{ng: ng, coloring: coloring}
	}
}

// SuccPort is the promise input: the port toward the ring successor.
type SuccPort struct {
	Port int
}

type synth struct {
	ng       *NbrGraph
	coloring []int
	env      sim.Env
	succ     int
	pred     int
	left     []int // IDs at distance 1..t in predecessor direction
	right    []int // IDs at distance 1..t in successor direction
	color    int
}

var _ sim.Machine = (*synth)(nil)

func (m *synth) Init(env sim.Env) {
	if env.Degree != 2 {
		panic("nbrgraph: synthesized machine runs on rings only")
	}
	sp, ok := env.Input.(SuccPort)
	if !ok {
		panic(fmt.Sprintf("nbrgraph: input is %T, want SuccPort", env.Input))
	}
	m.env = env
	m.succ = sp.Port
	m.pred = 1 - sp.Port
}

// chainMsg floods ID chains along the ring orientation.
type chainMsg struct {
	IDs []int // nearest first
}

func (m *synth) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	if step > 1 {
		// Absorb: the predecessor-direction chain arrives on pred port
		// (sent by the predecessor toward its successor = us).
		if msg := recv[m.pred]; msg != nil {
			m.left = msg.(chainMsg).IDs
		}
		if msg := recv[m.succ]; msg != nil {
			m.right = msg.(chainMsg).IDs
		}
	}
	if step > m.ng.T {
		// Radius-t window complete: look up the color.
		w := 2*m.ng.T + 1
		tuple := make(Tuple, 0, w)
		for i := len(m.left) - 1; i >= 0; i-- {
			tuple = append(tuple, m.left[i])
		}
		tuple = append(tuple, int(m.env.ID))
		tuple = append(tuple, m.right...)
		if len(tuple) != w {
			panic(fmt.Sprintf("nbrgraph: window has %d IDs, want %d (ring too short?)", len(tuple), w))
		}
		idx, ok := m.ng.index[tuple.key()]
		if !ok {
			panic(fmt.Sprintf("nbrgraph: window %v not in B_%d(%d) (IDs out of range?)", tuple, m.ng.T, m.ng.M))
		}
		m.color = m.coloring[idx]
		return nil, true
	}
	// Forward chains: send to successor the chain (me, my lefts...) and to
	// predecessor the chain (me, my rights...).
	toSucc := chainMsg{IDs: append([]int{int(m.env.ID)}, m.left...)}
	toPred := chainMsg{IDs: append([]int{int(m.env.ID)}, m.right...)}
	send := make([]sim.Message, 2)
	send[m.succ] = toSucc
	send[m.pred] = toPred
	return send, false
}

func (m *synth) Output() any { return m.color }
