// Package artifact centralizes baseline-artifact selection for the perf
// gates. Both the bench gate (BENCH_<stamp>.json, cmd/localbench) and the
// load gate (LOAD_<stamp>.json, internal/load, consumed by cmd/localload)
// compare a fresh run against the lexically latest prior artifact in a
// directory — stamps are fixed-width UTC timestamps, so lexical order is
// run order without parsing anything. This package is that selection,
// once: previously each gate carried its own copy with diverging edge-case
// behavior (zero-length debris from a crashed writer could be picked as a
// baseline and fail the parse, turning one bad file into a red gate).
package artifact

import (
	"os"
	"path/filepath"
	"sort"
)

// Latest returns the lexically latest <prefix>_*.json file in dir, skipping
// zero-length files — a crashed writer's debris is not a baseline, and the
// newest usable artifact behind it still is. A missing directory or no
// usable candidate returns "": the absence of a baseline is the first run,
// not an error.
func Latest(dir, prefix string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, prefix+"_*.json"))
	if err != nil {
		return "", err
	}
	sort.Strings(paths)
	for i := len(paths) - 1; i >= 0; i-- {
		info, err := os.Stat(paths[i])
		if err != nil || info.IsDir() || info.Size() == 0 {
			continue
		}
		return paths[i], nil
	}
	return "", nil
}
