package artifact

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLatestPicksLexicallyLast(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "LOAD_20260101T000000Z.json", "{}")
	write(t, dir, "LOAD_20260301T000000Z.json", "{}")
	write(t, dir, "LOAD_20260201T000000Z.json", "{}")
	got, err := Latest(dir, "LOAD")
	if err != nil || filepath.Base(got) != "LOAD_20260301T000000Z.json" {
		t.Fatalf("Latest = %q, %v", got, err)
	}
}

func TestLatestSkipsZeroLength(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "BENCH_20260101T000000Z.json", "{}")
	write(t, dir, "BENCH_20260301T000000Z.json", "") // crashed writer
	got, err := Latest(dir, "BENCH")
	if err != nil || filepath.Base(got) != "BENCH_20260101T000000Z.json" {
		t.Fatalf("Latest = %q, %v; want the non-empty predecessor", got, err)
	}
}

func TestLatestIgnoresNonMatching(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "LOAD_20260101T000000Z.json", "{}")
	write(t, dir, "BENCH_20260301T000000Z.json", "{}")
	write(t, dir, "notes.json", "{}")
	got, err := Latest(dir, "LOAD")
	if err != nil || filepath.Base(got) != "LOAD_20260101T000000Z.json" {
		t.Fatalf("Latest = %q, %v", got, err)
	}
}

func TestLatestEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	if got, err := Latest(dir, "LOAD"); got != "" || err != nil {
		t.Fatalf("empty dir: %q, %v", got, err)
	}
	if got, err := Latest(filepath.Join(dir, "nope"), "LOAD"); got != "" || err != nil {
		t.Fatalf("missing dir: %q, %v", got, err)
	}
	// All candidates zero-length: no usable baseline.
	write(t, dir, "LOAD_20260101T000000Z.json", "")
	if got, err := Latest(dir, "LOAD"); got != "" || err != nil {
		t.Fatalf("all-empty dir: %q, %v", got, err)
	}
}
