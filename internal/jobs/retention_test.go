package jobs

import "testing"

// TestStoreRetentionShrinksIdentityMap is the regression test for the
// idempotent-dedup leak: before Retention, a long-lived -idempotent daemon
// kept one identity entry per distinct spec forever. With retention bound
// R, both the job table and the dedup map must shrink back to R as terminal
// jobs age out.
func TestStoreRetentionShrinksIdentityMap(t *testing.T) {
	const retain = 2
	p := New(Options{Workers: 1, Idempotent: true, Retention: retain})
	defer closePoolWB(t, p)

	var ids []string
	for seed := uint64(1); seed <= 5; seed++ {
		res, err := p.SubmitTenant("", Spec{Experiment: "E8", Quick: true, Seed: seed})
		if err != nil {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		if res.Deduped {
			t.Fatalf("distinct seed %d deduped", seed)
		}
		ids = append(ids, res.ID)
		waitStateWB(t, p, res.ID, StateSucceeded)
	}

	p.mu.Lock()
	identityLen, jobsLen, doneLen := len(p.identity), len(p.jobs), len(p.done)
	p.mu.Unlock()
	if identityLen != retain {
		t.Errorf("identity map holds %d entries after 5 terminal jobs; want %d", identityLen, retain)
	}
	if jobsLen != retain || doneLen != retain {
		t.Errorf("jobs=%d done=%d; want %d each", jobsLen, doneLen, retain)
	}

	// Evicted jobs are gone from the poll surface...
	if _, ok := p.Get(ids[0]); ok {
		t.Errorf("evicted job %s still pollable", ids[0])
	}
	// ...while the most recent ones survive and still dedup.
	last := ids[len(ids)-1]
	if _, ok := p.Get(last); !ok {
		t.Errorf("retained job %s not pollable", last)
	}
	res, err := p.SubmitTenant("", Spec{Experiment: "E8", Quick: true, Seed: 5})
	if err != nil || !res.Deduped || res.ID != last {
		t.Errorf("retained spec did not dedup: %+v, %v (want id %s)", res, err, last)
	}
	// An evicted spec recomputes instead of dedup-hitting a ghost.
	res, err = p.SubmitTenant("", Spec{Experiment: "E8", Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("resubmit evicted spec: %v", err)
	}
	if res.Deduped {
		t.Errorf("evicted spec deduped against a dropped job")
	}
	waitStateWB(t, p, res.ID, StateSucceeded)
}

// TestRetentionZeroKeepsEverything pins the default: without a bound, no
// terminal job (and no identity entry) is ever evicted.
func TestRetentionZeroKeepsEverything(t *testing.T) {
	p := New(Options{Workers: 1, Idempotent: true})
	defer closePoolWB(t, p)
	for seed := uint64(1); seed <= 3; seed++ {
		res, err := p.SubmitTenant("", Spec{Experiment: "E8", Quick: true, Seed: seed})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		waitStateWB(t, p, res.ID, StateSucceeded)
	}
	p.mu.Lock()
	identityLen, jobsLen := len(p.identity), len(p.jobs)
	p.mu.Unlock()
	if identityLen != 3 || jobsLen != 3 {
		t.Errorf("identity=%d jobs=%d; want 3 each with Retention 0", identityLen, jobsLen)
	}
}
