package jobs

import (
	"fmt"
	"os"
	"path/filepath"

	"locality/internal/harness"
)

// checkpointStore persists job checkpoints as JSON files keyed by the job's
// determinism identity (experiment, seed, quick) — not by job ID, so a job
// resubmitted after a process kill finds the progress of its predecessor.
// An empty dir disables persistence; every method is then a no-op. All
// failures are swallowed: checkpointing is an optimization, and a job must
// never fail because its checkpoint could not be written or read.
type checkpointStore struct {
	dir string
}

// path is the checkpoint file for a spec. Sharded specs (Spec.Rows) append
// the row spec's canonical key: shards of the same sweep record different
// batches, so they must not share a file.
func (s checkpointStore) path(spec Spec) string {
	scale := "full"
	if spec.Quick {
		scale = "quick"
	}
	name := fmt.Sprintf("%s-%016x-%s", spec.Experiment, spec.Seed, scale)
	if spec.Rows != nil {
		name += "-" + spec.Rows.Key()
	}
	return filepath.Join(s.dir, name+".ckpt.json")
}

// load returns the persisted checkpoint for the spec, or nil.
func (s checkpointStore) load(spec Spec) *harness.Checkpoint {
	if s.dir == "" {
		return nil
	}
	data, err := os.ReadFile(s.path(spec))
	if err != nil {
		return nil
	}
	ck, err := harness.DecodeCheckpoint(data)
	if err != nil {
		return nil // corrupt file: start fresh, the sweep recomputes
	}
	return ck
}

// save writes the checkpoint atomically: temp file in the same directory,
// then rename, so a kill mid-write leaves the previous checkpoint intact.
func (s checkpointStore) save(spec Spec, ck *harness.Checkpoint) {
	if s.dir == "" {
		return
	}
	data, err := ck.Encode()
	if err != nil {
		return
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, ".ckpt-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(spec)); err != nil {
		os.Remove(tmp.Name())
	}
}

// clear removes the spec's checkpoint (called when its job succeeds).
func (s checkpointStore) clear(spec Spec) {
	if s.dir == "" {
		return
	}
	os.Remove(s.path(spec))
}
