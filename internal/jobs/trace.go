package jobs

import (
	"strconv"
	"time"

	"locality/internal/harness"
	"locality/internal/obs/trace"
	"locality/internal/sim"
)

// Batch-commit tracing.
//
// The harness stays clock-free (the localvet nowallclock gate), so batch
// timing lives here, on the pool side of the Observer seam — the same
// side where reportSink stamps its records. Each freshly committed batch
// becomes one complete "batch.commit" span under the job's run span: the
// span covers the interval since the previous commit (or since the
// observer was attached, for the first batch), which is exactly the time
// the sweep spent computing that batch's rows. Replayed batches fire no
// telemetry (mirroring OnBatch), so a resumed job's trace shows only the
// work it actually did.

// traceSink returns the per-attempt batch-span observer, or nil when
// tracing is off (so harness.Observers collapses it away and the sweep
// sees the report sink unwrapped). Batch spans parent to the job's root
// (the admission span) rather than the in-flight job.run span — see the
// job.root field on why that matters under SIGKILL.
func (p *Pool) traceSink(j *job) harness.Observer {
	if p.opts.Tracer == nil {
		return nil
	}
	return &traceObserver{tr: p.opts.Tracer, parent: j.root, last: time.Now()}
}

type traceObserver struct {
	tr     *trace.Tracer
	parent trace.SpanContext
	// last is the previous batch boundary. BatchDone is always called
	// from the driver goroutine in commit order (the Observer contract),
	// so no lock is needed.
	last time.Time
}

func (o *traceObserver) SimRound(string, sim.RoundStats) {}

func (o *traceObserver) BatchDone(experiment string, batches, rowsInBatch int) {
	now := time.Now()
	o.tr.Emit(o.parent, "batch.commit", o.last.UnixNano(), now.UnixNano(),
		"experiment", experiment,
		"batch", strconv.Itoa(batches),
		"rows", strconv.Itoa(rowsInBatch),
	)
	o.last = now
}
