package jobs

import (
	"os"
	"path/filepath"

	"locality/internal/harness"
	"locality/internal/obs"
)

// poolMetrics is the pool's instrumentation surface. Every field is resolved
// once at pool construction; with Options.Metrics nil all fields are nil and
// every method call below is a no-op (obs metrics are nil-receiver safe), so
// an uninstrumented pool pays nothing.
type poolMetrics struct {
	submitted   *obs.Counter
	shedFull    *obs.Counter
	shedDrain   *obs.Counter
	shedUnknown *obs.Counter
	shedInvalid *obs.Counter
	succeeded   *obs.Counter
	failed      *obs.Counter
	cancelled   *obs.Counter
	retries     *obs.Counter
	panics      *obs.Counter
	batches     *obs.Counter
	queueDepth  *obs.Gauge
	running     *obs.Gauge
}

func newPoolMetrics(reg *obs.Registry) poolMetrics {
	const (
		shedName = "locality_jobs_shed_total"
		shedHelp = "Submissions shed before enqueue, by reason."
		doneName = "locality_jobs_completed_total"
		doneHelp = "Jobs reaching a terminal state, by state."
	)
	return poolMetrics{
		submitted:   reg.Counter("locality_jobs_submitted_total", "Jobs accepted into the queue."),
		shedFull:    reg.Counter(shedName, shedHelp, "reason", "queue_full"),
		shedDrain:   reg.Counter(shedName, shedHelp, "reason", "draining"),
		shedUnknown: reg.Counter(shedName, shedHelp, "reason", "unknown_experiment"),
		shedInvalid: reg.Counter(shedName, shedHelp, "reason", "invalid_rows"),
		succeeded:   reg.Counter(doneName, doneHelp, "state", "succeeded"),
		failed:      reg.Counter(doneName, doneHelp, "state", "failed"),
		cancelled:   reg.Counter(doneName, doneHelp, "state", "cancelled"),
		retries:     reg.Counter("locality_jobs_retries_total", "Job attempts beyond each job's first."),
		panics:      reg.Counter("locality_jobs_panics_total", "Experiment panics recovered into job errors."),
		batches:     reg.Counter("locality_jobs_batches_total", "Freshly computed row batches across all jobs."),
		queueDepth:  reg.Gauge("locality_jobs_queue_depth", "Jobs waiting in the submission queue."),
		running:     reg.Gauge("locality_jobs_running", "Jobs currently executing on a worker."),
	}
}

// terminal counts a job's terminal state.
func (m poolMetrics) terminal(s State) {
	switch s {
	case StateSucceeded:
		m.succeeded.Inc()
	case StateCancelled:
		m.cancelled.Inc()
	default:
		m.failed.Inc()
	}
}

// reportSink opens the job's run-report file under Options.ReportDir and
// returns the sweep observer plus its closer. Telemetry must never fail a
// job, so — like checkpoint persistence — filesystem errors are swallowed
// and the job runs unobserved.
func (p *Pool) reportSink(j *job) (harness.Observer, func()) {
	if p.opts.ReportDir == "" {
		return nil, func() {}
	}
	f, err := os.Create(filepath.Join(p.opts.ReportDir, j.id+".report.jsonl"))
	if err != nil {
		return nil, func() {}
	}
	rep := obs.NewRunReport(f, obs.ReportMeta{
		Experiment: j.spec.Experiment,
		Seed:       j.spec.Seed,
		Quick:      j.spec.Quick,
		Workers:    j.spec.Workers,
	})
	return rep, func() {
		rep.Close()
		f.Close()
	}
}
