package jobs

import (
	"errors"
	"os"
	"path/filepath"

	"locality/internal/harness"
	"locality/internal/obs"
	"locality/internal/tenant"
)

// poolMetrics is the pool's instrumentation surface. Every field is resolved
// once at pool construction; with Options.Metrics nil all fields are nil and
// every method call below is a no-op (obs metrics are nil-receiver safe), so
// an uninstrumented pool pays nothing.
type poolMetrics struct {
	reg *obs.Registry // per-tenant series are resolved lazily against this

	submitted     *obs.Counter
	deduped       *obs.Counter
	shedFull      *obs.Counter
	shedDrain     *obs.Counter
	shedUnknown   *obs.Counter
	shedInvalid   *obs.Counter
	shedQuota     *obs.Counter
	shedExhausted *obs.Counter
	succeeded     *obs.Counter
	failed        *obs.Counter
	cancelled     *obs.Counter
	retries       *obs.Counter
	panics        *obs.Counter
	batches       *obs.Counter
	queueDepth    *obs.Gauge
	running       *obs.Gauge
}

func newPoolMetrics(reg *obs.Registry) poolMetrics {
	const (
		shedName = "locality_jobs_shed_total"
		shedHelp = "Submissions shed before enqueue, by reason."
		doneName = "locality_jobs_completed_total"
		doneHelp = "Jobs reaching a terminal state, by state."
	)
	return poolMetrics{
		reg:           reg,
		submitted:     reg.Counter("locality_jobs_submitted_total", "Jobs accepted into the queue."),
		deduped:       reg.Counter("locality_jobs_deduped_total", "Idempotent submissions answered with an existing job."),
		shedFull:      reg.Counter(shedName, shedHelp, "reason", "queue_full"),
		shedDrain:     reg.Counter(shedName, shedHelp, "reason", "draining"),
		shedUnknown:   reg.Counter(shedName, shedHelp, "reason", "unknown_experiment"),
		shedInvalid:   reg.Counter(shedName, shedHelp, "reason", "invalid_rows"),
		shedQuota:     reg.Counter(shedName, shedHelp, "reason", "tenant_quota"),
		shedExhausted: reg.Counter(shedName, shedHelp, "reason", "tenant_exhausted"),
		succeeded:     reg.Counter(doneName, doneHelp, "state", "succeeded"),
		failed:        reg.Counter(doneName, doneHelp, "state", "failed"),
		cancelled:     reg.Counter(doneName, doneHelp, "state", "cancelled"),
		retries:       reg.Counter("locality_jobs_retries_total", "Job attempts beyond each job's first."),
		panics:        reg.Counter("locality_jobs_panics_total", "Experiment panics recovered into job errors."),
		batches:       reg.Counter("locality_jobs_batches_total", "Freshly computed row batches across all jobs."),
		queueDepth:    reg.Gauge("locality_jobs_queue_depth", "Jobs waiting in the submission queue."),
		running:       reg.Gauge("locality_jobs_running", "Jobs currently executing on a worker."),
	}
}

// Per-tenant metric families. The label space is bounded by construction:
// pinned tenants (stable, operator-configured names) and the anonymous pot
// get their own series, while auto-registered tenants — whose key hashes
// rotate with traffic — aggregate under "other". Raw API keys never appear.
const (
	tenantAdmitName = "locality_tenant_admitted_total"
	tenantAdmitHelp = "Submissions admitted, by tenant."
	tenantShedName  = "locality_tenant_shed_total"
	tenantShedHelp  = "Submissions and streams shed by per-tenant admission, by tenant and reason."
	tenantStrmName  = "locality_tenant_streams_total"
	tenantStrmHelp  = "Event streams opened, by tenant."
)

// tenantLabel buckets a tenant into the bounded label space.
func tenantLabel(t *tenant.Tenant) string {
	if t == nil {
		return "other"
	}
	if t.Pinned() || t.ID() == tenant.AnonymousID {
		return t.ID()
	}
	return "other"
}

// shedReason classifies a tenant-layer rejection for the shed counter's
// reason label (a bounded, stable vocabulary).
func shedReason(err error) string {
	switch {
	case errors.Is(err, tenant.ErrRateLimited):
		return "rate_limited"
	case errors.Is(err, tenant.ErrQueueFull), errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, tenant.ErrInFlightLimit):
		return "in_flight_limit"
	case errors.Is(err, tenant.ErrStreamLimit):
		return "stream_limit"
	case errors.Is(err, tenant.ErrExhausted):
		return "tenant_exhausted"
	default:
		return "other"
	}
}

// tenantAdmit counts one admitted submission for the tenant.
func (m poolMetrics) tenantAdmit(t *tenant.Tenant) {
	m.reg.Counter(tenantAdmitName, tenantAdmitHelp, "tenant", tenantLabel(t)).Inc()
}

// tenantShed counts one rejected submission or stream for the tenant (nil
// when the rejection happened before a tenant could be resolved).
func (m poolMetrics) tenantShed(t *tenant.Tenant, err error) {
	m.reg.Counter(tenantShedName, tenantShedHelp,
		"tenant", tenantLabel(t), "reason", shedReason(err)).Inc()
}

// streamOpened counts one admitted event stream for the tenant.
func (m poolMetrics) streamOpened(t *tenant.Tenant) {
	m.reg.Counter(tenantStrmName, tenantStrmHelp, "tenant", tenantLabel(t)).Inc()
}

// terminal counts a job's terminal state.
func (m poolMetrics) terminal(s State) {
	switch s {
	case StateSucceeded:
		m.succeeded.Inc()
	case StateCancelled:
		m.cancelled.Inc()
	default:
		m.failed.Inc()
	}
}

// reportSink opens the job's run-report file under Options.ReportDir and
// returns the sweep observer plus its closer. Telemetry must never fail a
// job, so — like checkpoint persistence — filesystem errors are swallowed
// and the job runs unobserved.
func (p *Pool) reportSink(j *job) (harness.Observer, func()) {
	if p.opts.ReportDir == "" {
		return nil, func() {}
	}
	f, err := os.Create(filepath.Join(p.opts.ReportDir, j.id+".report.jsonl"))
	if err != nil {
		return nil, func() {}
	}
	rep := obs.NewRunReport(f, obs.ReportMeta{
		Experiment: j.spec.Experiment,
		Seed:       j.spec.Seed,
		Quick:      j.spec.Quick,
		Workers:    j.spec.Workers,
	})
	return rep, func() {
		rep.Close()
		f.Close()
		// FIFO-bound the report directory after each report closes, so a
		// long-lived daemon's ReportDir stops growing at the configured
		// budget instead of accumulating one file per job forever.
		obs.PruneDir(p.opts.ReportDir, "*.report.jsonl", p.opts.ReportMaxFiles)
	}
}
