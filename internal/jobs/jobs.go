// Package jobs is the supervision layer over the experiment harness: a
// bounded-queue worker pool that runs experiment and ablation sweeps as
// cancellable, deadline-bounded, checkpoint-resumable jobs.
//
// The contract, layer by layer:
//
//   - Backpressure is explicit. Submit never blocks and never buffers
//     unboundedly: a full queue (or a draining pool) sheds the submission
//     with a structured *ShedError stating the reason and the queue state.
//
//   - Failure is isolated and structured. A panicking experiment driver
//     takes down its attempt, not the worker and never the process: the
//     recovered value and stack are wrapped in a *JobError that classifies
//     with errors.Is against the harness and sim sentinels.
//
//   - Deadlines and cancellation are cooperative. A job's context (its
//     Spec.Timeout, a Cancel call, or pool shutdown) cancels the sweep
//     between row batches via harness.Config.Ctx, and would cancel
//     individual runs at round granularity via sim.RunContext; either way
//     the job lands in a terminal state with its progress checkpointed.
//
//   - Progress survives. Each completed row batch is checkpointed (in
//     memory, and to CheckpointDir when configured, written atomically); a
//     retried attempt or a resubmitted job resumes from the last completed
//     batch and — because the harness replays recorded batches verbatim —
//     produces byte-identical final output.
//
//   - Retry is disciplined. Transient failures are retried under
//     harness.RetryContext with deterministic seeded-jitter backoff;
//     cancellation and deadline errors are terminal, never retried.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"time"

	"locality/internal/harness"
	"locality/internal/sim"
)

// Spec describes one job: which sweep to run, at what scale, under what
// seed and deadline.
type Spec struct {
	// Experiment is the table ID ("E1" ... "E13", "A1" ... "A3").
	Experiment string `json:"experiment"`
	// Quick selects the reduced instance sizes used by tests.
	Quick bool `json:"quick,omitempty"`
	// Seed drives all of the sweep's randomness; with Experiment and Quick
	// it is the job's determinism identity.
	Seed uint64 `json:"seed"`
	// Timeout, when positive, bounds the job's total running time (queue
	// wait excluded). Expiry fails the job with a deadline classification.
	Timeout time.Duration `json:"timeout,omitempty"`
	// Workers, when > 1, computes the sweep's rows in parallel (see
	// harness.Config.Workers). It changes only wall-clock time, never
	// output: it is deliberately NOT part of the determinism identity, so
	// checkpoints resume across worker counts.
	Workers int `json:"workers,omitempty"`
	// Rows, when non-nil, runs the job as one shard of a cluster sweep: only
	// the selected row batches are computed, the job's product is its sparse
	// checkpoint (Pool.Checkpoint) rather than a rendered table, and Output
	// stays empty on success. Rows IS part of the determinism identity —
	// different shards record different batches — so checkpoints are keyed
	// by it.
	Rows *RowSpec `json:"rows,omitempty"`
}

// State is a job's lifecycle position. Terminal states are Succeeded,
// Failed and Cancelled.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// Job is a point-in-time snapshot of a job, safe to retain.
type Job struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
	// Tenant is the admitting tenant's public ID (never the raw API key).
	Tenant string `json:"tenant,omitempty"`
	// State is the lifecycle position at snapshot time.
	State State `json:"state"`
	// Attempts counts retry attempts started (1 on an untroubled run).
	Attempts int `json:"attempts"`
	// BatchesDone counts freshly computed row batches checkpointed so far.
	BatchesDone int `json:"batches_done"`
	// Error and ErrorKind describe the terminal failure: ErrorKind is the
	// errors.Is classification ("panic", "cancelled", "deadline", ...),
	// Error the rendered message. Empty on success.
	Error     string `json:"error,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// Output is the rendered result table; set only on success.
	Output string `json:"output,omitempty"`
}

// Sentinels. All job-layer errors classify with errors.Is.
var (
	// ErrJobPanic marks a recovered experiment panic (see JobError).
	ErrJobPanic = errors.New("jobs: experiment panicked")
	// ErrQueueFull is the shed reason when the submission queue is at
	// capacity.
	ErrQueueFull = errors.New("jobs: submission queue full")
	// ErrDraining is the shed reason once shutdown has begun.
	ErrDraining = errors.New("jobs: pool draining")
	// ErrUnknownExperiment rejects a Spec naming no registered driver.
	ErrUnknownExperiment = errors.New("jobs: unknown experiment")
	// ErrUnknownJob is returned by Cancel for an ID the pool never issued.
	ErrUnknownJob = errors.New("jobs: unknown job")
)

// ShedError is a rejected submission: load shedding made explicit. It wraps
// the reason sentinel (ErrQueueFull, ErrDraining, ErrUnknownExperiment, or a
// *tenant.LimitError for per-tenant quota rejections) and records the queue
// state at rejection time, so clients can derive a proportional backoff.
type ShedError struct {
	// Reason is the sentinel explaining the rejection.
	Reason error
	// QueueLen and QueueCap are the submission queue's occupancy and
	// capacity when the submission was shed.
	QueueLen, QueueCap int
	// Workers is the pool's concurrency — the queue's drain rate
	// denominator, for occupancy-proportional Retry-After estimates.
	Workers int
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("jobs: submission shed (%v; queue %d/%d)", e.Reason, e.QueueLen, e.QueueCap)
}

// Unwrap exposes the reason to errors.Is.
func (e *ShedError) Unwrap() error { return e.Reason }

// JobError wraps a panic recovered from an experiment driver. It unwraps to
// ErrJobPanic and — when the panicked value was itself an error, as with the
// harness's *SweepError — to that cause, so errors.Is classification
// (cancellation, deadline, sim sentinels) flows through the recovery.
type JobError struct {
	// ID and Experiment identify the job whose attempt panicked.
	ID, Experiment string
	// Value is the recovered panic value, verbatim.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
	// Cause is Value when it was an error, else nil.
	Cause error
}

func (e *JobError) Error() string {
	return fmt.Sprintf("jobs: %s (%s) panicked: %v", e.ID, e.Experiment, e.Value)
}

// Unwrap exposes the panic sentinel and, when present, the error cause.
func (e *JobError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrJobPanic, e.Cause}
	}
	return []error{ErrJobPanic}
}

// classify buckets a terminal job error for the snapshot's ErrorKind. Order
// matters: a cancelled-by-deadline sweep matches both the interruption
// sentinel and DeadlineExceeded, and the deadline is the truer story.
func classify(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, sim.ErrDeadline):
		return "deadline"
	case errors.Is(err, context.Canceled), errors.Is(err, harness.ErrSweepInterrupted):
		return "cancelled"
	case errors.Is(err, sim.ErrNodePanic), errors.Is(err, sim.ErrOverSend):
		return "node-fault"
	case errors.Is(err, sim.ErrMaxRounds):
		return "max-rounds"
	case errors.Is(err, ErrJobPanic):
		return "panic"
	default:
		return "error"
	}
}

// cancelled reports whether a terminal error means the job was called off
// (as opposed to failing on its own).
func cancelled(err error) bool {
	return (errors.Is(err, context.Canceled) || errors.Is(err, harness.ErrSweepInterrupted)) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// lookup resolves an experiment ID across both harness registries.
func lookup(id string) (func(harness.Config) *harness.Table, bool) {
	if f, ok := harness.ByID(id); ok {
		return f, true
	}
	return harness.ByIDSupplementary(id)
}
