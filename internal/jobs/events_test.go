package jobs_test

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"locality/internal/harness"
	"locality/internal/jobs"
	"locality/internal/tenant"
)

// collect drains a subscription until Done, returning every event received
// (including any buffered behind the terminal notification).
func collect(t *testing.T, sub *jobs.Subscription) []jobs.Event {
	t.Helper()
	var events []jobs.Event
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev := <-sub.Events():
			events = append(events, ev)
		case <-sub.Done():
			for {
				select {
				case ev := <-sub.Events():
					events = append(events, ev)
					continue
				default:
				}
				return events
			}
		case <-deadline:
			t.Fatal("subscription never terminated")
		}
	}
}

// TestEventsStreamProgressAndTerminal: a subscriber sees monotone sequence
// numbers, batch progress, and a guaranteed termination signal.
func TestEventsStreamProgressAndTerminal(t *testing.T) {
	subscribed := make(chan struct{})
	var once sync.Once
	p := jobs.New(jobs.Options{
		Workers: 1,
		BatchHook: func(string, *harness.Checkpoint) {
			<-subscribed // hold the first batch until the stream is open
		},
	})
	defer closePool(t, p)

	res, err := p.SubmitTenant("", jobs.Spec{Experiment: "E12", Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := p.Subscribe("", res.ID, 64)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer p.Unsubscribe(sub)
	once.Do(func() { close(subscribed) })

	events := collect(t, sub)
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	var lastSeq uint64
	progress := 0
	for _, ev := range events {
		if ev.JobID != res.ID {
			t.Fatalf("event for wrong job: %+v", ev)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("sequence not increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if !ev.Terminal && ev.BatchesDone > 0 {
			progress++
		}
	}
	if progress == 0 {
		t.Error("no batch progress events observed")
	}
	last := events[len(events)-1]
	if !last.Terminal || last.State != jobs.StateSucceeded {
		t.Errorf("final event not terminal-succeeded: %+v", last)
	}
	if j, _ := p.Get(res.ID); j.State != jobs.StateSucceeded {
		t.Errorf("snapshot disagrees with stream: %s", j.State)
	}
}

// TestSubscribeTerminalJob: subscribing after the job finished succeeds
// with Done already closed — no waiting, no lost termination.
func TestSubscribeTerminalJob(t *testing.T) {
	p := jobs.New(jobs.Options{Workers: 1})
	defer closePool(t, p)
	id, err := p.Submit(jobs.Spec{Experiment: "E8", Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, p, id)
	sub, err := p.Subscribe("", id, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Unsubscribe(sub)
	select {
	case <-sub.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed for a terminal job")
	}
}

// TestSubscribeUnknownJob rejects with the job sentinel.
func TestSubscribeUnknownJob(t *testing.T) {
	p := jobs.New(jobs.Options{})
	defer closePool(t, p)
	if _, err := p.Subscribe("", "job-404", 4); !errors.Is(err, jobs.ErrUnknownJob) {
		t.Fatalf("err = %v, want ErrUnknownJob", err)
	}
}

// TestStreamCapPerTenant: the concurrent-stream quota rejects structurally,
// and Unsubscribe releases the slot.
func TestStreamCapPerTenant(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	p := jobs.New(jobs.Options{
		Workers: 1,
		Tenancy: &tenant.Config{Defaults: tenant.Limits{MaxStreams: 1}},
		BatchHook: func(string, *harness.Checkpoint) {
			<-gate
		},
	})
	defer func() {
		once.Do(func() { close(gate) })
		closePool(t, p)
	}()

	res, err := p.SubmitTenant("k", jobs.Spec{Experiment: "E8", Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := p.Subscribe("k", res.ID, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Subscribe("k", res.ID, 4)
	var le *tenant.LimitError
	if !errors.As(err, &le) || !errors.Is(err, tenant.ErrStreamLimit) {
		t.Fatalf("second stream: err = %v, want *LimitError wrapping ErrStreamLimit", err)
	}
	// Another tenant's slot is independent.
	other, err := p.Subscribe("k2", res.ID, 4)
	if err != nil {
		t.Fatalf("other tenant's stream rejected: %v", err)
	}
	p.Unsubscribe(other)
	// Releasing frees the slot; double-release must not free someone else's.
	p.Unsubscribe(sub)
	p.Unsubscribe(sub)
	sub2, err := p.Subscribe("k", res.ID, 4)
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	_, err = p.Subscribe("k", res.ID, 4)
	if !errors.Is(err, tenant.ErrStreamLimit) {
		t.Fatalf("cap gone after re-acquire: %v", err)
	}
	p.Unsubscribe(sub2)
	once.Do(func() { close(gate) })
}

// TestDrainClosesSubscriptions is the drain-race guarantee at the pool
// layer: a stream over a job that is force-cancelled by the drain deadline
// still observes a terminal event and a closed Done.
func TestDrainClosesSubscriptions(t *testing.T) {
	before := runtime.NumGoroutine()
	p := jobs.New(jobs.Options{
		Workers: 1,
		BatchHook: func(string, *harness.Checkpoint) {
			time.Sleep(20 * time.Millisecond) // slow the job so the drain deadline bites
		},
	})
	res, err := p.SubmitTenant("", jobs.Spec{Experiment: "E12", Quick: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := p.Subscribe("", res.ID, 64)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Close(ctx); err == nil {
		t.Log("job drained before the deadline; terminal path still verified")
	}
	select {
	case <-sub.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not close the subscription")
	}
	events := collect(t, sub)
	if len(events) == 0 {
		t.Fatal("no terminal event on drain")
	}
	last := events[len(events)-1]
	if !last.Terminal {
		t.Errorf("last event not terminal: %+v", last)
	}
	j, _ := p.Get(res.ID)
	if !j.State.Terminal() {
		t.Errorf("job not terminal after drain: %s", j.State)
	}
	p.Unsubscribe(sub)
	checkGoroutines(t, before)
}
