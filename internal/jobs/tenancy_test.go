package jobs

// White-box tenancy tests: these need the unexported clock override to
// drive the token bucket deterministically, and peek at dispatch order.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"locality/internal/harness"
	"locality/internal/tenant"
)

func waitStateWB(t *testing.T, p *Pool, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := p.Get(id)
		if !ok {
			t.Fatalf("job %s unknown", id)
		}
		if j.State == want || j.State.Terminal() {
			if j.State != want {
				t.Fatalf("job %s reached %s (error %q), want %s", id, j.State, j.Error, want)
			}
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Job{}
}

func closePoolWB(t *testing.T, p *Pool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestTenantRateLimitDeterministic drives the submit token bucket with a
// fake clock: burst admits, the next submit sheds with the exact
// deterministic retry hint, and exactly one token accrues per period.
func TestTenantRateLimitDeterministic(t *testing.T) {
	var now int64
	p := New(Options{
		Workers: 1,
		Tenancy: &tenant.Config{
			Defaults: tenant.Limits{Rate: 1, Burst: 2},
		},
		nowNanos: func() int64 { return now },
	})
	defer closePoolWB(t, p)

	spec := Spec{Experiment: "E8", Quick: true}
	for i := 0; i < 2; i++ {
		spec.Seed = uint64(i)
		if _, err := p.SubmitTenant("key", spec); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	spec.Seed = 99
	_, err := p.SubmitTenant("key", spec)
	var shedErr *ShedError
	if !errors.As(err, &shedErr) || !errors.Is(err, tenant.ErrRateLimited) {
		t.Fatalf("empty bucket: err = %v, want ShedError wrapping ErrRateLimited", err)
	}
	var le *tenant.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("rate shed does not carry *tenant.LimitError: %v", err)
	}
	if le.RetryAfterNanos != int64(time.Second) {
		t.Errorf("RetryAfterNanos = %d, want 1s at rate 1/s", le.RetryAfterNanos)
	}
	if le.Tenant == "key" {
		t.Errorf("LimitError leaks the raw API key")
	}
	now += int64(time.Second)
	if _, err := p.SubmitTenant("key", spec); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	// A different tenant holds an independent bucket.
	spec.Seed = 100
	if _, err := p.SubmitTenant("other-key", spec); err != nil {
		t.Fatalf("independent tenant: %v", err)
	}
}

// TestTenantQuotaSheds covers the queued and in-flight caps end to end
// through SubmitTenant, including the structured shed metadata.
func TestTenantQuotaSheds(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	p := New(Options{
		Workers:    1,
		QueueDepth: 8,
		Tenancy: &tenant.Config{
			Defaults: tenant.Limits{MaxQueued: 1, MaxInFlight: 2},
		},
		BatchHook: func(string, *harness.Checkpoint) { <-gate },
	})
	defer func() {
		once.Do(func() { close(gate) })
		closePoolWB(t, p)
	}()

	// First job occupies the worker (blocked in its first batch), second
	// fills the tenant's queue slot, third trips MaxQueued. The first must
	// be dequeued (running) before the second submits, or it still counts
	// against the queued cap.
	if _, err := p.SubmitTenant("k", Spec{Experiment: "E8", Quick: true, Seed: 0}); err != nil {
		t.Fatalf("submit 0: %v", err)
	}
	waitStateWB(t, p, "job-0", StateRunning)
	if _, err := p.SubmitTenant("k", Spec{Experiment: "E8", Quick: true, Seed: 1}); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	_, err := p.SubmitTenant("k", Spec{Experiment: "E8", Quick: true, Seed: 9})
	switch {
	case errors.Is(err, tenant.ErrQueueFull):
	case errors.Is(err, tenant.ErrInFlightLimit):
		// running(1) + queued(1) == MaxInFlight: also a legal rejection order
		t.Fatalf("expected the queued cap to trip first, got in-flight: %v", err)
	default:
		t.Fatalf("tenant queue cap: err = %v", err)
	}
	// Another tenant is unaffected by k's quotas.
	if _, err := p.SubmitTenant("other", Spec{Experiment: "E8", Quick: true, Seed: 10}); err != nil {
		t.Fatalf("other tenant blocked by k's quota: %v", err)
	}
	once.Do(func() { close(gate) })
}

// TestFairShareDispatchOrder pins the weighted round-robin dispatch: with
// one worker and a flooding tenant ahead in the queue, a well-behaved
// tenant's single job is served next turn, not after the flood.
func TestFairShareDispatchOrder(t *testing.T) {
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	started := make(map[string]bool)
	p := New(Options{
		Workers:    1,
		QueueDepth: 16,
		BatchHook: func(id string, _ *harness.Checkpoint) {
			mu.Lock()
			if !started[id] {
				started[id] = true
				order = append(order, id)
			}
			mu.Unlock()
			if id == "job-0" {
				<-release // hold the worker until the queue is loaded
			}
		},
	})
	defer closePoolWB(t, p)

	// job-0 (anonymous tenant) occupies the only worker.
	blocker, err := p.SubmitTenant("", Spec{Experiment: "E12", Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitStateWB(t, p, blocker.ID, StateRunning)

	// The abusive tenant floods six jobs, then the good tenant submits one.
	var abusive []string
	for i := 0; i < 6; i++ {
		res, err := p.SubmitTenant("abusive-key", Spec{Experiment: "E8", Quick: true, Seed: uint64(10 + i)})
		if err != nil {
			t.Fatalf("abusive submit %d: %v", i, err)
		}
		abusive = append(abusive, res.ID)
	}
	good, err := p.SubmitTenant("good-key", Spec{Experiment: "E8", Quick: true, Seed: 42})
	if err != nil {
		t.Fatalf("good submit: %v", err)
	}
	close(release)
	waitStateWB(t, p, good.ID, StateSucceeded)

	mu.Lock()
	defer mu.Unlock()
	goodPos, abusiveBefore := -1, 0
	for i, id := range order {
		if id == good.ID {
			goodPos = i
		}
	}
	for _, id := range abusive {
		for i, o := range order {
			if o == id && goodPos >= 0 && i < goodPos {
				abusiveBefore++
			}
		}
	}
	if goodPos < 0 {
		t.Fatalf("good job never started; order %v", order)
	}
	// Round-robin serves one abusive job per turn: at most one of the six
	// flooding jobs may run before the good tenant's.
	if abusiveBefore > 1 {
		t.Errorf("good job started at position %d with %d abusive jobs before it (order %v); fair share broken",
			goodPos, abusiveBefore, order)
	}
}
