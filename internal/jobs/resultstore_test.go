package jobs_test

import (
	"strings"
	"testing"

	"locality/internal/jobs"
	"locality/internal/obs"
	"locality/internal/store"
)

func openStoreT(t *testing.T, dir string, reg *obs.Registry) *store.Store {
	t.Helper()
	s, err := store.Open(store.Options{Dir: dir, Metrics: reg})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestStoreDifferentialByteIdentity is the tentpole's acceptance test:
// cached and freshly-computed sweep tables are byte-identical, including
// after a kill-and-reopen of the store, and a cache hit completes at submit
// time without re-entering the worker pool.
func TestStoreDifferentialByteIdentity(t *testing.T) {
	spec := jobs.Spec{Experiment: "E8", Quick: true, Seed: 7}
	want, wantBatches := runDirect(t, spec)
	dir := t.TempDir()

	// Pool 1: a miss computes and writes through.
	s1 := openStoreT(t, dir, nil)
	p1 := jobs.New(jobs.Options{Workers: 2, Store: s1})
	res, err := p1.SubmitTenant("", spec)
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	if res.Cached {
		t.Fatalf("cold submit reported a cache hit")
	}
	cold := waitTerminal(t, p1, res.ID)
	if cold.State != jobs.StateSucceeded || cold.Output != want {
		t.Fatalf("cold run: state %s, output matches: %v", cold.State, cold.Output == want)
	}

	// Same pool, second identical submit: served from the store, already
	// terminal when SubmitTenant returns — it never touched the queue.
	res2, err := p1.SubmitTenant("", spec)
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	if !res2.Cached || res2.ID == res.ID {
		t.Fatalf("warm submit: cached=%v id=%s (cold id %s)", res2.Cached, res2.ID, res.ID)
	}
	warm, ok := p1.Get(res2.ID)
	if !ok || warm.State != jobs.StateSucceeded {
		t.Fatalf("cached job not terminal at submit return: %+v, %v", warm, ok)
	}
	if warm.Output != want {
		t.Fatalf("cached output differs from direct run")
	}
	if warm.BatchesDone != wantBatches {
		t.Errorf("cached BatchesDone = %d, want %d", warm.BatchesDone, wantBatches)
	}
	if warm.Attempts != 0 {
		t.Errorf("cached job recorded %d attempts; it must not have run", warm.Attempts)
	}
	closePool(t, p1)

	// Kill-and-reopen: open the directory again WITHOUT closing s1 — the
	// crash shape — and serve a fresh pool from the recovered store.
	reg := obs.NewRegistry()
	s2 := openStoreT(t, dir, reg)
	p2 := jobs.New(jobs.Options{Workers: 2, Store: s2})
	res3, err := p2.SubmitTenant("", spec)
	if err != nil {
		t.Fatalf("post-crash submit: %v", err)
	}
	if !res3.Cached {
		t.Fatalf("post-crash submit missed the store")
	}
	replay, _ := p2.Get(res3.ID)
	if replay.Output != want {
		t.Fatalf("post-crash cached output differs from direct run")
	}
	var prom strings.Builder
	reg.WriteProm(&prom)
	if !strings.Contains(prom.String(), "locality_store_hits_total 1") {
		t.Errorf("store hit not visible on metrics:\n%s", prom.String())
	}

	// A different identity misses and computes fresh.
	other := jobs.Spec{Experiment: "E8", Quick: true, Seed: 8}
	res4, err := p2.SubmitTenant("", other)
	if err != nil {
		t.Fatalf("distinct submit: %v", err)
	}
	if res4.Cached {
		t.Fatalf("distinct seed served from cache")
	}
	waitTerminal(t, p2, res4.ID)
	closePool(t, p2)
}

// TestStoreCacheHitStreamsReplay: SSE subscribers on a cache-born job see
// the standard already-terminal shape — Done closed at subscribe, snapshot
// carrying the terminal state — so the serving path replays without any
// special casing.
func TestStoreCacheHitStreamsReplay(t *testing.T) {
	spec := jobs.Spec{Experiment: "E8", Quick: true, Seed: 9}
	dir := t.TempDir()
	s := openStoreT(t, dir, nil)
	p := jobs.New(jobs.Options{Workers: 2, Store: s})
	res, err := p.SubmitTenant("", spec)
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	waitTerminal(t, p, res.ID)
	res2, err := p.SubmitTenant("", spec)
	if err != nil || !res2.Cached {
		t.Fatalf("warm submit: %+v, %v", res2, err)
	}
	sub, err := p.Subscribe("", res2.ID, 4)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	select {
	case <-sub.Done():
	default:
		t.Fatalf("Done not closed for cache-born terminal job")
	}
	p.Unsubscribe(sub)
	closePool(t, p)
}

// TestStoreSkipsShardedJobs: a sharded job's product is its checkpoint, not
// a table, so the pool-level cache must ignore it in both directions.
func TestStoreSkipsShardedJobs(t *testing.T) {
	spec := jobs.Spec{Experiment: "E8", Quick: true, Seed: 10,
		Rows: &jobs.RowSpec{Mod: 2, Keep: 0}}
	dir := t.TempDir()
	s := openStoreT(t, dir, nil)
	p := jobs.New(jobs.Options{Workers: 2, Store: s})
	res, err := p.SubmitTenant("", spec)
	if err != nil || res.Cached {
		t.Fatalf("sharded submit: %+v, %v", res, err)
	}
	j := waitTerminal(t, p, res.ID)
	if j.State != jobs.StateSucceeded {
		t.Fatalf("sharded job: state %s, error %q", j.State, j.Error)
	}
	if s.Len() != 0 {
		t.Fatalf("sharded success wrote %d store records; want 0", s.Len())
	}
	res2, err := p.SubmitTenant("", spec)
	if err != nil {
		t.Fatalf("sharded resubmit: %v", err)
	}
	if res2.Cached {
		t.Fatalf("sharded resubmit served from the result store")
	}
	waitTerminal(t, p, res2.ID)
	closePool(t, p)
}
