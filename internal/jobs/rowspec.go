package jobs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrInvalidRowSpec rejects a Spec whose Rows field is malformed; it is a
// shed reason, like ErrUnknownExperiment.
var ErrInvalidRowSpec = errors.New("jobs: invalid row spec")

// RowSpec restricts a job's sweep to a subset of its row batches, turning
// the job into one shard of a cluster sweep (harness.Config.RowSelect). A
// sharded job's product is its sparse checkpoint — Output stays empty and
// the coordinator fetches the checkpoint via Pool.Checkpoint (HTTP: GET
// /v1/jobs/{id}/checkpoint) and merges shards with harness's Adopt.
//
// Selection composes three filters:
//
//   - Include, when non-empty, is an explicit batch-index allowlist — the
//     coordinator's failover currency: a dead shard's missing batches,
//     partitioned among survivors.
//   - Otherwise Mod/Keep select the residue class i % Mod == Keep — the
//     initial assignment, which needs no knowledge of the sweep's batch
//     count.
//   - Skip always excludes its indices — batches the coordinator already
//     holds, so re-dispatched work never recomputes merged rows.
//
// The zero RowSpec selects every batch (minus Skip), which is still useful:
// it runs the full sweep in checkpoint-product mode.
type RowSpec struct {
	// Mod and Keep select the residue class i % Mod == Keep. Mod 0 or 1
	// selects all batches. Ignored when Include is non-empty.
	Mod  int `json:"mod,omitempty"`
	Keep int `json:"keep,omitempty"`
	// Include, when non-empty, selects exactly these batch indices.
	Include []int `json:"include,omitempty"`
	// Skip excludes these batch indices regardless of the other filters.
	Skip []int `json:"skip,omitempty"`
}

// Validate checks the spec's internal consistency.
func (r *RowSpec) Validate() error {
	if r == nil {
		return nil
	}
	if r.Mod < 0 {
		return fmt.Errorf("%w: mod %d < 0", ErrInvalidRowSpec, r.Mod)
	}
	if r.Mod > 1 && (r.Keep < 0 || r.Keep >= r.Mod) {
		return fmt.Errorf("%w: keep %d outside [0,%d)", ErrInvalidRowSpec, r.Keep, r.Mod)
	}
	if r.Mod <= 1 && r.Keep != 0 {
		return fmt.Errorf("%w: keep %d without mod", ErrInvalidRowSpec, r.Keep)
	}
	for _, i := range r.Include {
		if i < 0 {
			return fmt.Errorf("%w: include index %d < 0", ErrInvalidRowSpec, i)
		}
	}
	for _, i := range r.Skip {
		if i < 0 {
			return fmt.Errorf("%w: skip index %d < 0", ErrInvalidRowSpec, i)
		}
	}
	return nil
}

// Selected reports whether batch i is this shard's to compute. A nil spec
// selects everything. Batch counts are small (tens per sweep), so the index
// lists are scanned linearly.
func (r *RowSpec) Selected(i int) bool {
	if r == nil {
		return true
	}
	for _, s := range r.Skip {
		if s == i {
			return false
		}
	}
	if len(r.Include) > 0 {
		for _, inc := range r.Include {
			if inc == i {
				return true
			}
		}
		return false
	}
	if r.Mod > 1 {
		return i%r.Mod == r.Keep
	}
	return true
}

// Key renders the spec as a short canonical filesystem-safe string for the
// checkpoint store: two sharded jobs share a checkpoint file only when they
// select the same batches.
func (r *RowSpec) Key() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "m%dk%d", r.Mod, r.Keep)
	if len(r.Include) > 0 {
		fmt.Fprintf(&b, "i%s", indexKey(r.Include))
	}
	if len(r.Skip) > 0 {
		fmt.Fprintf(&b, "s%s", indexKey(r.Skip))
	}
	return b.String()
}

// indexKey renders an index list sorted and deduplicated, so order and
// repetition in the wire form never split checkpoint identity.
func indexKey(idx []int) string {
	sorted := append([]int(nil), idx...)
	sort.Ints(sorted)
	var parts []string
	for i, v := range sorted {
		if i > 0 && v == sorted[i-1] {
			continue
		}
		parts = append(parts, fmt.Sprint(v))
	}
	return strings.Join(parts, ".")
}
