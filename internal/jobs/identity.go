package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// IdentitySchema versions the identity hash's input encoding. Bump it when
// the encoding below (or the semantics of any encoded field) changes, so
// idempotency keys from older processes can never alias new submissions.
const IdentitySchema = "locality-job-identity/v1"

// IdentityKey hashes the job's determinism identity — the exact fields the
// checkpoint store keys on: experiment, scale, seed, and row selection,
// under the schema version. Two specs share a key if and only if they are
// guaranteed to produce byte-identical output, which is what makes the key
// safe as an idempotency token: a duplicate submission can be answered with
// the existing job because the work it would do is literally the same.
//
// Timeout and Workers are deliberately excluded: they change whether and
// how fast a job finishes, never what it computes (see Spec).
func (s Spec) IdentityKey() string {
	h := sha256.New()
	// Length-prefix the only free-form field so no crafted experiment name
	// can shift the field boundaries of the encoding.
	fmt.Fprintf(h, "%s\x00%d:%s\x00%t\x00%016x\x00%s",
		IdentitySchema, len(s.Experiment), s.Experiment, s.Quick, s.Seed, s.Rows.Key())
	return hex.EncodeToString(h.Sum(nil))
}
