package jobs_test

// Tracing differentials at the pool layer: enabling the tracer must not
// change a single output byte (the telemetry-inertness contract), and the
// artifact a traced pool writes must assemble into complete causal trees
// rooted at each job's identity-derived trace ID. Plus the ReportMaxFiles
// FIFO regression: a bounded report directory stops growing at the budget.

import (
	"os"
	"path/filepath"
	"slices"
	"testing"

	"locality/internal/jobs"
	"locality/internal/obs/trace"
)

// TestTracerByteIdentity runs the same specs through a plain pool and a
// traced pool (Workers>1, parallel rows included) and requires identical
// bytes, then asserts the trace artifact assembles orphan-free with every
// pool-layer span type present.
func TestTracerByteIdentity(t *testing.T) {
	specs := []jobs.Spec{
		{Experiment: "E2", Quick: true, Seed: 7},
		{Experiment: "E4", Quick: true, Seed: 11},
		{Experiment: "E8", Quick: true, Seed: 7, Workers: 2},
		{Experiment: "E12", Quick: true, Seed: 3},
	}

	runPool := func(opts jobs.Options) map[string]string {
		out := make(map[string]string)
		p := jobs.New(opts)
		defer closePool(t, p)
		for _, spec := range specs {
			id, err := p.Submit(spec)
			if err != nil {
				t.Fatalf("submit %s: %v", spec.Experiment, err)
			}
			j := waitTerminal(t, p, id)
			if j.State != jobs.StateSucceeded {
				t.Fatalf("%s: state %s (%s)", spec.Experiment, j.State, j.Error)
			}
			out[spec.Experiment] = j.Output
		}
		return out
	}

	plain := runPool(jobs.Options{Workers: 2})

	traceDir := t.TempDir()
	tr, err := trace.Open(trace.Options{Dir: traceDir, Proc: "pool"})
	if err != nil {
		t.Fatal(err)
	}
	traced := runPool(jobs.Options{Workers: 2, Tracer: tr})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	for _, spec := range specs {
		want, _ := runDirect(t, spec)
		if plain[spec.Experiment] != want {
			t.Errorf("%s: plain pool output differs from direct run", spec.Experiment)
		}
		if traced[spec.Experiment] != plain[spec.Experiment] {
			t.Errorf("%s: tracing changed output bytes", spec.Experiment)
		}
	}

	res, err := trace.Load(traceDir)
	if err != nil {
		t.Fatal(err)
	}
	forest := trace.Assemble(res.Spans)
	if err := forest.Err(); err != nil {
		t.Fatalf("traced pool artifact incomplete: %v", err)
	}
	for _, spec := range specs {
		id := trace.IDFromIdentity(spec.IdentityKey())
		var tree *trace.Tree
		for _, tt := range forest.Traces {
			if tt.ID == id {
				tree = tt
			}
		}
		if tree == nil {
			t.Fatalf("%s: no trace %s among %d traces", spec.Experiment, id, len(forest.Traces))
		}
		names := tree.Names()
		for _, want := range []string{"pool.admit", "queue.wait", "job.run", "batch.commit"} {
			if !slices.Contains(names, want) {
				t.Errorf("%s trace missing span %q (have %v)", spec.Experiment, want, names)
			}
		}
		if cp := tree.CriticalPath(); len(cp) == 0 {
			t.Errorf("%s: empty critical path", spec.Experiment)
		}
	}
}

// TestReportMaxFilesPrunes is the ReportDir FIFO regression: with a
// 2-file budget, the third job's report evicts the first job's.
func TestReportMaxFilesPrunes(t *testing.T) {
	dir := t.TempDir()
	p := jobs.New(jobs.Options{Workers: 1, ReportDir: dir, ReportMaxFiles: 2})
	defer closePool(t, p)

	var ids []string
	for _, seed := range []uint64{1, 2, 3} {
		id, err := p.Submit(jobs.Spec{Experiment: "E4", Quick: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if j := waitTerminal(t, p, id); j.State != jobs.StateSucceeded {
			t.Fatalf("seed %d: %s (%s)", seed, j.State, j.Error)
		}
		ids = append(ids, id)
	}

	reports, err := filepath.Glob(filepath.Join(dir, "*.report.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("report dir holds %d files %v, want 2", len(reports), reports)
	}
	if _, err := os.Stat(filepath.Join(dir, ids[0]+".report.jsonl")); !os.IsNotExist(err) {
		t.Errorf("oldest report %s survived the FIFO bound", ids[0])
	}
	for _, id := range ids[1:] {
		if _, err := os.Stat(filepath.Join(dir, id+".report.jsonl")); err != nil {
			t.Errorf("report %s missing: %v", id, err)
		}
	}
}
