package jobs

import (
	"bytes"
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"locality/internal/harness"
	"locality/internal/obs"
	"locality/internal/obs/trace"
	"locality/internal/rng"
	"locality/internal/store"
	"locality/internal/tenant"
)

// Options configures a Pool. The zero value is usable: 2 workers, a queue
// of 16, no persistence, no retry, single-tenant, no dedup.
type Options struct {
	// Workers is the number of concurrent job runners (default 2).
	Workers int
	// QueueDepth bounds the submission queue (default 16). A submission
	// arriving at a full queue is shed, never buffered elsewhere.
	QueueDepth int
	// CheckpointDir, when non-empty, persists each job's row-batch
	// checkpoint as JSON under this directory (atomic write: temp file
	// then rename), keyed by the job's determinism identity. A job
	// resubmitted after a crash resumes from the persisted batches; the
	// file is removed when the job succeeds.
	CheckpointDir string
	// RetryBudget is the number of attempts per job (default 1, i.e. no
	// retry). Retries apply only to transient failures — panics that are
	// not cancellations or deadlines — and each retried attempt resumes
	// from the job's checkpoint rather than starting over.
	RetryBudget int
	// Backoff paces the retries. Its Seed is mixed with each job's Spec
	// seed so every job walks its own deterministic jitter schedule.
	Backoff harness.Backoff
	// BatchHook, when non-nil, is invoked synchronously after each freshly
	// computed (and persisted) row batch with the job ID and a private
	// checkpoint clone. It exists for tests — fault injection, progress
	// assertions — and runs inside the job attempt, so a panic here is
	// recovered like any experiment panic.
	BatchHook func(id string, ck *harness.Checkpoint)
	// Metrics, when non-nil, receives the pool's counters and gauges
	// (submissions, sheds by reason, terminal states, retries, panics,
	// batches, queue depth, running jobs, per-tenant admissions). Nil
	// disables instrumentation at zero cost.
	Metrics *obs.Registry
	// ReportDir, when non-empty, writes one JSONL run report per job
	// (<id>.report.jsonl) capturing the sweep's round- and batch-level
	// telemetry. Like checkpoint persistence, report I/O failures never fail
	// a job.
	ReportDir string
	// ReportMaxFiles bounds ReportDir: past it, the oldest report files
	// are removed FIFO after each report closes (the result store's
	// whole-segment eviction idiom, applied to whole report files).
	// 0 keeps everything.
	ReportMaxFiles int
	// Tracer, when non-nil, emits deterministic spans for every
	// submission and job lifecycle stage — admission, store lookup,
	// queue wait, execution, per-batch commits, store write-through —
	// into the tracer's JSONL artifact (internal/obs/trace). Like
	// Metrics, nil disables tracing at zero cost, and tracing is inert
	// by the same contract: results are byte-identical with it on or
	// off (differentially test-asserted).
	Tracer *trace.Tracer
	// Tenancy, when non-nil, configures multi-tenant admission: per-tenant
	// quotas, bounded tenant retention, and weighted round-robin fair
	// dequeue (see internal/tenant). Nil runs the registry with permissive
	// defaults — every caller is admitted subject only to the global queue
	// bound, and unkeyed callers share the anonymous tenant.
	Tenancy *tenant.Config
	// Idempotent dedups submissions by determinism identity: a submit whose
	// Spec.IdentityKey matches a queued, running or succeeded job returns
	// that job (SubmitResult.Deduped) instead of enqueueing work. Failed
	// and cancelled jobs do not dedup — resubmitting one recomputes.
	Idempotent bool
	// Store, when non-nil, is the persistent content-addressed result
	// cache (internal/store). An unsharded submit whose determinism
	// identity hits the store returns an already-succeeded job without
	// entering the queue — charged to the tenant as a cheap admission
	// (rate token only, no queue or in-flight slot) — and every unsharded
	// success writes its rendered table through. Soundness rests on
	// IdentityKey covering everything the output depends on (see
	// identity.go): cached and freshly-computed tables are byte-identical.
	Store *store.Store
	// Retention bounds how many terminal jobs stay pollable: past it, the
	// oldest terminal jobs are dropped FIFO, each taking its idempotency-
	// map entry with it — the dedup map cannot outgrow the job table.
	// 0 retains everything (tests, short-lived pools).
	Retention int

	// nowNanos overrides the monotonic clock feeding the tenant registry's
	// token buckets. Tests only; nil uses the process monotonic clock.
	nowNanos func() int64
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 2
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 16
}

func (o Options) retryBudget() int {
	if o.RetryBudget > 0 {
		return o.RetryBudget
	}
	return 1
}

// job is the pool-private mutable record behind a Job snapshot. All fields
// after the immutables are guarded by the pool mutex.
type job struct {
	id       string
	spec     Spec
	ikey     string // determinism identity, when dedup or the result store needs it
	num      int    // submission order, for List
	tenantID string // admitting tenant's public ID

	ctx    context.Context // cancelled by Cancel, Close, or pool teardown
	cancel context.CancelFunc

	state       State
	attempts    int
	batchesDone int
	err         error
	output      string
	ck          *harness.Checkpoint // latest snapshot; final sparse ck for sharded jobs
	subs        []*Subscription     // live event streams
	eventSeq    uint64

	// root parents EVERY run-side span (queue wait, execution, batch
	// commits, store write-through) — the admission span's context,
	// carrying the identity-derived trace. Deliberately not the job.run
	// span: a span record is written only at End, so parenting long-lived
	// children to a span a SIGKILL might leave unwritten would orphan
	// them; the admission span is durably on disk before the job starts.
	root trace.SpanContext
	// qspan is the queue-wait span, started at enqueue and ended by the
	// worker that dequeues the job.
	qspan *trace.Span
}

// Pool is a supervised worker pool running experiment sweeps. Create with
// New, submit with Submit or SubmitTenant, shut down with Close.
type Pool struct {
	opts    Options
	store   checkpointStore
	metrics poolMetrics
	// wake carries one token per queued job: Submit deposits a token after
	// a successful tenant-registry enqueue, each worker withdraws one and
	// dequeues the next job under weighted round-robin. Capacity equals the
	// global queue bound, and the bound is checked before enqueueing under
	// the same mutex, so a deposit never blocks. Close closes wake; workers
	// drain the remaining tokens (running the queued jobs to the drain
	// deadline) and exit.
	wake  chan struct{}
	epoch time.Time // monotonic anchor for the tenant registry's clock

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	identity map[string]*job // IdentityKey -> job, when Options.Idempotent
	done     []string        // terminal job IDs in completion order, for Retention
	tenants  *tenant.Registry
	nextNum  int
	draining bool
}

// New starts a pool: opts.Workers goroutines consuming the fair queue.
func New(opts Options) *Pool {
	ctx, cancel := context.WithCancel(context.Background())
	tcfg := tenant.Config{}
	if opts.Tenancy != nil {
		tcfg = *opts.Tenancy
	}
	p := &Pool{
		opts:      opts,
		store:     checkpointStore{dir: opts.CheckpointDir},
		metrics:   newPoolMetrics(opts.Metrics),
		wake:      make(chan struct{}, opts.queueDepth()),
		epoch:     time.Now(),
		baseCtx:   ctx,
		cancelAll: cancel,
		jobs:      make(map[string]*job),
		identity:  make(map[string]*job),
		tenants:   tenant.NewRegistry(tcfg),
	}
	for i := 0; i < opts.workers(); i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for range p.wake {
				p.mu.Lock()
				item, ten, ok := p.tenants.Dequeue()
				p.metrics.queueDepth.Set(int64(p.tenants.QueuedTotal()))
				p.mu.Unlock()
				if !ok {
					continue
				}
				p.runJob(item.(*job), ten)
			}
		}()
	}
	return p
}

// now is the monotonic clock injected into the tenant registry. Wall time
// here paces admission (token-bucket refill), never results.
func (p *Pool) now() int64 {
	if p.opts.nowNanos != nil {
		return p.opts.nowNanos()
	}
	return int64(time.Since(p.epoch))
}

// SubmitResult reports an accepted submission.
type SubmitResult struct {
	// ID is the job to poll.
	ID string `json:"id"`
	// Tenant is the admitting tenant's public ID (a pinned name, a key
	// hash, or "anonymous" — never the raw API key). On a deduped result it
	// is the original submitter's tenant.
	Tenant string `json:"tenant,omitempty"`
	// Deduped reports an idempotent hit: ID names a previously submitted
	// job with the same determinism identity, and no new work was enqueued
	// (and no quota was charged).
	Deduped bool `json:"deduped,omitempty"`
	// Cached reports a result-store hit: ID names a fresh job that was
	// born succeeded from the persistent cache — no work was enqueued, and
	// the tenant was charged a rate token but no queue or in-flight slot.
	Cached bool `json:"cached,omitempty"`
}

// Submit enqueues a job on behalf of the anonymous tenant and returns its
// ID. See SubmitTenant.
func (p *Pool) Submit(spec Spec) (string, error) {
	res, err := p.SubmitTenant("", spec)
	return res.ID, err
}

// SubmitTenant enqueues a job on behalf of the tenant owning apiKey. It
// never blocks: when the pool is draining, the global queue is full, the
// spec is invalid, or the tenant's quotas reject the submission, it sheds
// with a *ShedError explaining why (tenant rejections wrap the structured
// *tenant.LimitError, so errors.Is classifies against the tenant
// sentinels and errors.As recovers the retry hint).
//
// With Options.Idempotent, a spec whose determinism identity matches a
// queued, running or succeeded job dedups: the existing job is returned
// with Deduped set, no work is enqueued, and no quota is charged.
func (p *Pool) SubmitTenant(apiKey string, spec Spec) (SubmitResult, error) {
	return p.SubmitTenantSpan(trace.SpanContext{}, apiKey, spec)
}

// SubmitTenantSpan is SubmitTenant with an inbound trace parent: the HTTP
// layer passes the request's span so the admission span (and everything
// the job emits below it) lands in the caller's trace. A zero parent with
// tracing enabled roots a fresh trace derived from the spec's determinism
// identity, so re-submitting the same spec yields the same trace ID on
// every process that ever touches it.
func (p *Pool) SubmitTenantSpan(parent trace.SpanContext, apiKey string, spec Spec) (SubmitResult, error) {
	var asp *trace.Span
	if tr := p.opts.Tracer; tr != nil {
		if parent.Trace == "" {
			parent.Trace = trace.IDFromIdentity(spec.IdentityKey())
		}
		asp = tr.Start(parent, "pool.admit", "experiment", spec.Experiment)
	}
	// End deferred before the mutex is taken: the span's file write runs
	// after Unlock, keeping I/O out of the pool's critical section.
	defer asp.End()
	p.mu.Lock()
	defer p.mu.Unlock()
	shed := func(reason error) (SubmitResult, error) {
		asp.SetAttr("outcome", "shed")
		return SubmitResult{}, &ShedError{
			Reason:   reason,
			QueueLen: p.tenants.QueuedTotal(),
			QueueCap: p.opts.queueDepth(),
			Workers:  p.opts.workers(),
		}
	}
	if _, ok := lookup(spec.Experiment); !ok {
		p.metrics.shedUnknown.Inc()
		return shed(fmt.Errorf("%w %q", ErrUnknownExperiment, spec.Experiment))
	}
	if err := spec.Rows.Validate(); err != nil {
		p.metrics.shedInvalid.Inc()
		return shed(err)
	}
	if p.draining {
		p.metrics.shedDrain.Inc()
		return shed(ErrDraining)
	}
	var ikey string
	if p.opts.Idempotent || p.opts.Store != nil || p.opts.Tracer != nil {
		ikey = spec.IdentityKey()
	}
	if p.opts.Idempotent {
		if prev, ok := p.identity[ikey]; ok &&
			prev.state != StateFailed && prev.state != StateCancelled {
			p.metrics.deduped.Inc()
			asp.SetAttr("outcome", "deduped")
			asp.SetAttr("job", prev.id)
			return SubmitResult{ID: prev.id, Tenant: prev.tenantID, Deduped: true}, nil
		}
	}
	ten, err := p.tenants.Lookup(apiKey)
	if err != nil {
		p.metrics.shedExhausted.Inc()
		p.metrics.tenantShed(nil, err)
		return shed(err)
	}
	// Result-store consult — after the dedup check, so concurrent
	// duplicates of a live job keep collapsing onto one ID rather than
	// minting per-submit cached jobs. An unsharded spec whose result is
	// already stored completes here: the job is born succeeded, enters no
	// queue, and holds no slot, so the tenant pays the rate token only.
	// (Sharded specs are excluded end to end: their product is a
	// checkpoint, not a table, and the coordinator caches the merged
	// result instead.)
	if p.opts.Store != nil && spec.Rows == nil {
		gs := p.opts.Tracer.Start(asp.Context(), "store.get")
		res, ok := p.opts.Store.Get(ikey)
		if ok {
			gs.SetAttr("outcome", "hit")
		} else {
			gs.SetAttr("outcome", "miss")
		}
		gs.End()
		if ok {
			if err := p.tenants.Admit(ten, p.now()); err != nil {
				p.metrics.shedQuota.Inc()
				p.metrics.tenantShed(ten, err)
				return shed(err)
			}
			j := &job{
				id:          fmt.Sprintf("job-%d", p.nextNum),
				num:         p.nextNum,
				spec:        spec,
				ikey:        ikey,
				tenantID:    ten.ID(),
				ctx:         p.baseCtx,
				cancel:      func() {}, // nothing to cancel: born terminal
				state:       StateSucceeded,
				output:      res.Output,
				batchesDone: res.Batches,
			}
			p.nextNum++
			p.jobs[j.id] = j
			if p.opts.Idempotent {
				p.identity[ikey] = j
			}
			p.retainLocked(j)
			p.metrics.submitted.Inc()
			p.metrics.tenantAdmit(ten)
			p.metrics.terminal(StateSucceeded)
			asp.SetAttr("outcome", "cached")
			asp.SetAttr("job", j.id)
			return SubmitResult{ID: j.id, Tenant: ten.ID(), Cached: true}, nil
		}
	}
	if p.tenants.QueuedTotal() >= p.opts.queueDepth() {
		p.metrics.shedFull.Inc()
		p.metrics.tenantShed(ten, ErrQueueFull)
		return shed(ErrQueueFull)
	}
	ctx, cancel := context.WithCancel(p.baseCtx)
	j := &job{
		id:       fmt.Sprintf("job-%d", p.nextNum),
		num:      p.nextNum,
		spec:     spec,
		ikey:     ikey,
		tenantID: ten.ID(),
		ctx:      ctx,
		cancel:   cancel,
		state:    StateQueued,
	}
	if err := p.tenants.Enqueue(ten, j, p.now()); err != nil {
		cancel()
		p.metrics.shedQuota.Inc()
		p.metrics.tenantShed(ten, err)
		return shed(err)
	}
	select {
	case p.wake <- struct{}{}:
	default:
		// Unreachable: Enqueue admitted at most queueDepth items (checked
		// above under this mutex), and each admitted item owns one token.
	}
	p.nextNum++
	p.jobs[j.id] = j
	if ikey != "" {
		p.identity[ikey] = j
	}
	p.metrics.submitted.Inc()
	p.metrics.tenantAdmit(ten)
	p.metrics.queueDepth.Set(int64(p.tenants.QueuedTotal()))
	asp.SetAttr("outcome", "enqueued")
	asp.SetAttr("job", j.id)
	// The run-side spans parent to the admission span: queue.wait starts
	// now and is ended by the worker that dequeues the job.
	j.root = asp.Context()
	j.qspan = p.opts.Tracer.Start(j.root, "queue.wait", "experiment", spec.Experiment, "job", j.id)
	return SubmitResult{ID: j.id, Tenant: ten.ID()}, nil
}

// Get returns a snapshot of the job, if the pool knows the ID.
func (p *Pool) Get(id string) (Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return Job{}, false
	}
	return p.snapshot(j), true
}

// List returns snapshots of every job, in submission order.
func (p *Pool) List() []Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	all := make([]*job, 0, len(p.jobs))
	for _, j := range p.jobs {
		all = append(all, j)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].num < all[b].num })
	out := make([]Job, len(all))
	for i, j := range all {
		out[i] = p.snapshot(j)
	}
	return out
}

// snapshot renders a job under the pool mutex.
func (p *Pool) snapshot(j *job) Job {
	s := Job{
		ID:          j.id,
		Spec:        j.spec,
		Tenant:      j.tenantID,
		State:       j.state,
		Attempts:    j.attempts,
		BatchesDone: j.batchesDone,
		Output:      j.output,
	}
	if j.err != nil {
		s.Error = j.err.Error()
		s.ErrorKind = classify(j.err)
	}
	return s
}

// Cancel requests cancellation of a job. A queued job is cancelled before
// it starts; a running job's sweep aborts at the next row-batch boundary.
// Cancelling a terminal job is a no-op.
func (p *Pool) Cancel(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	j.cancel()
	return nil
}

// Draining reports whether shutdown has begun (readiness probes flip on
// this).
func (p *Pool) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// Close shuts the pool down gracefully: no new submissions are accepted,
// queued and in-flight jobs keep running until ctx expires, and any job
// still running at that point is cancelled — its progress already
// checkpointed batch by batch, its event subscribers notified with a
// terminal event. Close returns once every worker goroutine has exited:
// nil if all jobs drained, otherwise the drain deadline's cause. Close is
// idempotent; later calls just wait for the drain.
func (p *Pool) Close(ctx context.Context) error {
	p.mu.Lock()
	already := p.draining
	p.draining = true
	p.mu.Unlock()
	if !already {
		close(p.wake)
	}

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("jobs: drain deadline: %w", context.Cause(ctx))
		p.cancelAll()
		<-done
	}
	p.cancelAll()
	return err
}

// runJob drives one job to a terminal state. It never panics: experiment
// panics are recovered inside the attempt and become structured errors.
// Whatever the terminal state, the tenant's in-flight slot is released and
// every event subscriber observes termination.
func (p *Pool) runJob(j *job, ten *tenant.Tenant) {
	defer j.cancel()
	p.mu.Lock()
	if j.ctx.Err() != nil { // cancelled while queued
		p.finishLocked(j, fmt.Errorf("jobs: cancelled before start: %w", context.Cause(j.ctx)))
		p.tenants.Finish(ten)
		subs := j.takeSubsLocked()
		qspan := j.qspan
		p.mu.Unlock()
		closeSubs(subs)
		qspan.SetAttr("outcome", "cancelled")
		qspan.End()
		return
	}
	j.state = StateRunning
	qspan := j.qspan
	j.publishLocked()
	p.mu.Unlock()
	rspan := p.opts.Tracer.Start(j.root, "job.run", "experiment", j.spec.Experiment, "job", j.id)
	qspan.SetAttr("outcome", "dequeued")
	qspan.End()
	p.metrics.running.Inc()
	defer p.metrics.running.Dec()

	ctx := j.ctx
	if j.spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.spec.Timeout)
		defer cancel()
	}

	ck := p.store.load(j.spec)
	if ck != nil {
		p.mu.Lock()
		j.batchesDone = ck.Computed()
		j.ck = ck
		p.mu.Unlock()
	}

	backoff := p.opts.Backoff
	backoff.Seed = rng.Mix64(backoff.Seed, j.spec.Seed)

	// RetryContext owns the budget and the waits; the callback reports
	// transient errors for retry and swallows permanent ones (recording
	// them in `permanent`) to stop the budget early — a cancelled or
	// deadlined job must not burn attempts it was told not to make.
	var table string
	var permanent error
	rr := harness.RetryContext(ctx, p.opts.retryBudget(), backoff, func(attempt int) error {
		if attempt > 0 {
			p.metrics.retries.Inc()
		}
		p.mu.Lock()
		j.attempts = attempt + 1
		p.mu.Unlock()
		tbl, err := p.attempt(ctx, j, &ck)
		switch {
		case err == nil:
			if tbl != nil { // sharded attempts succeed table-less
				var buf bytes.Buffer
				tbl.Render(&buf)
				table = buf.String()
			}
			return nil
		case cancelled(err) || classify(err) == "deadline":
			permanent = err
			return nil
		default:
			return err
		}
	})

	var final error
	switch {
	case permanent != nil:
		final = permanent
	case rr.Success:
		final = nil
	default:
		final = rr.LastErr
	}

	p.mu.Lock()
	if final == nil {
		j.state = StateSucceeded
		j.output = table
		batches := j.batchesDone
		p.retainLocked(j)
		p.tenants.Finish(ten)
		subs := j.takeSubsLocked()
		p.mu.Unlock()
		closeSubs(subs)
		p.metrics.terminal(StateSucceeded)
		// A sharded job's checkpoint IS its product: keep the file so a
		// resubmitted shard (coordinator retry, restarted worker) replays to
		// instant completion instead of recomputing. An unsharded success
		// drops its checkpoint and writes the rendered table through to the
		// result store — the next identical submit completes at admission.
		if j.spec.Rows == nil {
			p.store.clear(j.spec)
			if p.opts.Store != nil {
				ps := p.opts.Tracer.Start(j.root, "store.put")
				p.opts.Store.Put(j.ikey, store.Result{Output: table, Batches: batches})
				ps.End()
			}
		}
		rspan.SetAttr("state", string(StateSucceeded))
		rspan.End()
		return
	}
	p.finishLocked(j, final)
	p.tenants.Finish(ten)
	subs := j.takeSubsLocked()
	st := j.state
	p.mu.Unlock()
	closeSubs(subs)
	rspan.SetAttr("state", string(st))
	rspan.End()
}

// finishLocked records a terminal failure; callers hold the pool mutex.
func (p *Pool) finishLocked(j *job, err error) {
	j.err = err
	if cancelled(err) {
		j.state = StateCancelled
	} else {
		j.state = StateFailed
	}
	p.retainLocked(j)
	p.metrics.terminal(j.state)
}

// retainLocked records j's terminal transition and enforces
// Options.Retention: past the bound, the oldest terminal jobs fall off the
// FIFO, each deleted from the job table together with any idempotency-map
// entry still pointing at it — so a long-lived idempotent pool's dedup map
// shrinks with its jobs instead of holding one entry per distinct spec
// forever. Queued and running jobs are never evicted (they are not in the
// FIFO yet). Callers hold the pool mutex.
func (p *Pool) retainLocked(j *job) {
	if p.opts.Retention <= 0 {
		return
	}
	p.done = append(p.done, j.id)
	for len(p.done) > p.opts.Retention {
		id := p.done[0]
		p.done = p.done[1:]
		old, ok := p.jobs[id]
		if !ok {
			continue
		}
		delete(p.jobs, id)
		if old.ikey != "" {
			if cur, ok := p.identity[old.ikey]; ok && cur == old {
				delete(p.identity, old.ikey)
			}
		}
	}
}

// attempt runs the experiment driver once, under panic isolation: a
// panicking driver (or batch hook) is recovered into a *JobError carrying
// the value and stack, and the worker lives on. Completed row batches are
// checkpointed as they land, so whatever ends this attempt, the next one —
// or a resubmission — resumes where it stopped.
//
// A sharded attempt (Spec.Rows set) ends in the harness's *ShardDoneError
// panic instead of returning a table; that is its success: the final sparse
// checkpoint — TotalBatches now known — is recorded, persisted, and the
// attempt reports (nil, nil).
func (p *Pool) attempt(ctx context.Context, j *job, ck **harness.Checkpoint) (tbl *harness.Table, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if done, ok := r.(*harness.ShardDoneError); ok && j.spec.Rows != nil {
			*ck = done.Checkpoint
			p.store.save(j.spec, done.Checkpoint)
			p.mu.Lock()
			j.ck = done.Checkpoint
			j.batchesDone = done.Checkpoint.Computed()
			p.mu.Unlock()
			tbl, err = nil, nil
			return
		}
		p.metrics.panics.Inc()
		je := &JobError{ID: j.id, Experiment: j.spec.Experiment, Value: r, Stack: debug.Stack()}
		if cause, ok := r.(error); ok {
			je.Cause = cause
		}
		err = je
	}()
	report, closeReport := p.reportSink(j)
	defer closeReport()
	driver, _ := lookup(j.spec.Experiment)
	cfg := harness.Config{
		Obs:     harness.Observers(report, p.traceSink(j)),
		Quick:   j.spec.Quick,
		Seed:    j.spec.Seed,
		Workers: j.spec.Workers,
		Ctx:     ctx,
		Resume:  *ck,
		OnBatch: func(c *harness.Checkpoint) {
			p.metrics.batches.Inc()
			snap := c.Clone()
			*ck = snap
			p.mu.Lock()
			j.batchesDone = snap.Computed()
			j.ck = snap
			j.publishLocked()
			p.mu.Unlock()
			p.store.save(j.spec, snap)
			if p.opts.BatchHook != nil {
				p.opts.BatchHook(j.id, snap)
			}
		},
	}
	if j.spec.Rows != nil {
		cfg.RowSelect = j.spec.Rows.Selected
	}
	return driver(cfg), nil
}

// Checkpoint returns the job's latest checkpoint snapshot — updated batch by
// batch while the job runs, and holding the final sparse checkpoint (with
// TotalBatches set) once a sharded job succeeds. The second return
// distinguishes an unknown ID (false) from a known job with no checkpoint
// yet (nil, true). The returned checkpoint is a shared snapshot the pool no
// longer mutates; callers must treat it as read-only.
func (p *Pool) Checkpoint(id string) (*harness.Checkpoint, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return nil, false
	}
	return j.ck, true
}
