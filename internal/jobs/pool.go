package jobs

import (
	"bytes"
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"

	"locality/internal/harness"
	"locality/internal/obs"
	"locality/internal/rng"
)

// Options configures a Pool. The zero value is usable: 2 workers, a queue
// of 16, no persistence, no retry.
type Options struct {
	// Workers is the number of concurrent job runners (default 2).
	Workers int
	// QueueDepth bounds the submission queue (default 16). A submission
	// arriving at a full queue is shed, never buffered elsewhere.
	QueueDepth int
	// CheckpointDir, when non-empty, persists each job's row-batch
	// checkpoint as JSON under this directory (atomic write: temp file
	// then rename), keyed by the job's determinism identity. A job
	// resubmitted after a crash resumes from the persisted batches; the
	// file is removed when the job succeeds.
	CheckpointDir string
	// RetryBudget is the number of attempts per job (default 1, i.e. no
	// retry). Retries apply only to transient failures — panics that are
	// not cancellations or deadlines — and each retried attempt resumes
	// from the job's checkpoint rather than starting over.
	RetryBudget int
	// Backoff paces the retries. Its Seed is mixed with each job's Spec
	// seed so every job walks its own deterministic jitter schedule.
	Backoff harness.Backoff
	// BatchHook, when non-nil, is invoked synchronously after each freshly
	// computed (and persisted) row batch with the job ID and a private
	// checkpoint clone. It exists for tests — fault injection, progress
	// assertions — and runs inside the job attempt, so a panic here is
	// recovered like any experiment panic.
	BatchHook func(id string, ck *harness.Checkpoint)
	// Metrics, when non-nil, receives the pool's counters and gauges
	// (submissions, sheds by reason, terminal states, retries, panics,
	// batches, queue depth, running jobs). Nil disables instrumentation at
	// zero cost.
	Metrics *obs.Registry
	// ReportDir, when non-empty, writes one JSONL run report per job
	// (<id>.report.jsonl) capturing the sweep's round- and batch-level
	// telemetry. Like checkpoint persistence, report I/O failures never fail
	// a job.
	ReportDir string
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return 2
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 16
}

func (o Options) retryBudget() int {
	if o.RetryBudget > 0 {
		return o.RetryBudget
	}
	return 1
}

// job is the pool-private mutable record behind a Job snapshot. All fields
// after the immutables are guarded by the pool mutex.
type job struct {
	id   string
	spec Spec
	num  int // submission order, for List

	ctx    context.Context    // cancelled by Cancel, Close, or pool teardown
	cancel context.CancelFunc

	state       State
	attempts    int
	batchesDone int
	err         error
	output      string
	ck          *harness.Checkpoint // latest snapshot; final sparse ck for sharded jobs
}

// Pool is a supervised worker pool running experiment sweeps. Create with
// New, submit with Submit, shut down with Close.
type Pool struct {
	opts    Options
	store   checkpointStore
	metrics poolMetrics
	queue   chan *job

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	nextNum  int
	draining bool
}

// New starts a pool: opts.Workers goroutines consuming a bounded queue.
func New(opts Options) *Pool {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		opts:      opts,
		store:     checkpointStore{dir: opts.CheckpointDir},
		metrics:   newPoolMetrics(opts.Metrics),
		queue:     make(chan *job, opts.queueDepth()),
		baseCtx:   ctx,
		cancelAll: cancel,
		jobs:      make(map[string]*job),
	}
	for i := 0; i < opts.workers(); i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.queue {
				p.metrics.queueDepth.Set(int64(len(p.queue)))
				p.runJob(j)
			}
		}()
	}
	return p
}

// Submit enqueues a job and returns its ID. It never blocks: when the pool
// is draining, the queue is full, or the spec names no registered
// experiment, the submission is shed with a *ShedError explaining why.
func (p *Pool) Submit(spec Spec) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	shed := func(reason error) (string, error) {
		return "", &ShedError{Reason: reason, QueueLen: len(p.queue), QueueCap: cap(p.queue)}
	}
	if _, ok := lookup(spec.Experiment); !ok {
		p.metrics.shedUnknown.Inc()
		return shed(fmt.Errorf("%w %q", ErrUnknownExperiment, spec.Experiment))
	}
	if err := spec.Rows.Validate(); err != nil {
		p.metrics.shedInvalid.Inc()
		return shed(err)
	}
	if p.draining {
		p.metrics.shedDrain.Inc()
		return shed(ErrDraining)
	}
	ctx, cancel := context.WithCancel(p.baseCtx)
	j := &job{
		id:     fmt.Sprintf("job-%d", p.nextNum),
		num:    p.nextNum,
		spec:   spec,
		ctx:    ctx,
		cancel: cancel,
		state:  StateQueued,
	}
	select {
	case p.queue <- j:
		p.nextNum++
		p.jobs[j.id] = j
		p.metrics.submitted.Inc()
		p.metrics.queueDepth.Set(int64(len(p.queue)))
		return j.id, nil
	default:
		cancel()
		p.metrics.shedFull.Inc()
		return shed(ErrQueueFull)
	}
}

// Get returns a snapshot of the job, if the pool knows the ID.
func (p *Pool) Get(id string) (Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return Job{}, false
	}
	return p.snapshot(j), true
}

// List returns snapshots of every job, in submission order.
func (p *Pool) List() []Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	all := make([]*job, 0, len(p.jobs))
	for _, j := range p.jobs {
		all = append(all, j)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].num < all[b].num })
	out := make([]Job, len(all))
	for i, j := range all {
		out[i] = p.snapshot(j)
	}
	return out
}

// snapshot renders a job under the pool mutex.
func (p *Pool) snapshot(j *job) Job {
	s := Job{
		ID:          j.id,
		Spec:        j.spec,
		State:       j.state,
		Attempts:    j.attempts,
		BatchesDone: j.batchesDone,
		Output:      j.output,
	}
	if j.err != nil {
		s.Error = j.err.Error()
		s.ErrorKind = classify(j.err)
	}
	return s
}

// Cancel requests cancellation of a job. A queued job is cancelled before
// it starts; a running job's sweep aborts at the next row-batch boundary.
// Cancelling a terminal job is a no-op.
func (p *Pool) Cancel(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	j.cancel()
	return nil
}

// Draining reports whether shutdown has begun (readiness probes flip on
// this).
func (p *Pool) Draining() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// Close shuts the pool down gracefully: no new submissions are accepted,
// queued and in-flight jobs keep running until ctx expires, and any job
// still running at that point is cancelled — its progress already
// checkpointed batch by batch. Close returns once every worker goroutine
// has exited: nil if all jobs drained, otherwise the drain deadline's
// cause. Close is idempotent; later calls just wait for the drain.
func (p *Pool) Close(ctx context.Context) error {
	p.mu.Lock()
	already := p.draining
	p.draining = true
	p.mu.Unlock()
	if !already {
		close(p.queue)
	}

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("jobs: drain deadline: %w", context.Cause(ctx))
		p.cancelAll()
		<-done
	}
	p.cancelAll()
	return err
}

// runJob drives one job to a terminal state. It never panics: experiment
// panics are recovered inside the attempt and become structured errors.
func (p *Pool) runJob(j *job) {
	defer j.cancel()
	p.mu.Lock()
	if j.ctx.Err() != nil { // cancelled while queued
		p.finishLocked(j, fmt.Errorf("jobs: cancelled before start: %w", context.Cause(j.ctx)))
		p.mu.Unlock()
		return
	}
	j.state = StateRunning
	p.mu.Unlock()
	p.metrics.running.Inc()
	defer p.metrics.running.Dec()

	ctx := j.ctx
	if j.spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.spec.Timeout)
		defer cancel()
	}

	ck := p.store.load(j.spec)
	if ck != nil {
		p.mu.Lock()
		j.batchesDone = ck.Computed()
		j.ck = ck
		p.mu.Unlock()
	}

	backoff := p.opts.Backoff
	backoff.Seed = rng.Mix64(backoff.Seed, j.spec.Seed)

	// RetryContext owns the budget and the waits; the callback reports
	// transient errors for retry and swallows permanent ones (recording
	// them in `permanent`) to stop the budget early — a cancelled or
	// deadlined job must not burn attempts it was told not to make.
	var table string
	var permanent error
	rr := harness.RetryContext(ctx, p.opts.retryBudget(), backoff, func(attempt int) error {
		if attempt > 0 {
			p.metrics.retries.Inc()
		}
		p.mu.Lock()
		j.attempts = attempt + 1
		p.mu.Unlock()
		tbl, err := p.attempt(ctx, j, &ck)
		switch {
		case err == nil:
			if tbl != nil { // sharded attempts succeed table-less
				var buf bytes.Buffer
				tbl.Render(&buf)
				table = buf.String()
			}
			return nil
		case cancelled(err) || classify(err) == "deadline":
			permanent = err
			return nil
		default:
			return err
		}
	})

	var final error
	switch {
	case permanent != nil:
		final = permanent
	case rr.Success:
		final = nil
	default:
		final = rr.LastErr
	}

	p.mu.Lock()
	if final == nil {
		j.state = StateSucceeded
		j.output = table
		p.mu.Unlock()
		p.metrics.terminal(StateSucceeded)
		// A sharded job's checkpoint IS its product: keep the file so a
		// resubmitted shard (coordinator retry, restarted worker) replays to
		// instant completion instead of recomputing.
		if j.spec.Rows == nil {
			p.store.clear(j.spec)
		}
		return
	}
	p.finishLocked(j, final)
	p.mu.Unlock()
}

// finishLocked records a terminal failure; callers hold the pool mutex.
func (p *Pool) finishLocked(j *job, err error) {
	j.err = err
	if cancelled(err) {
		j.state = StateCancelled
	} else {
		j.state = StateFailed
	}
	p.metrics.terminal(j.state)
}

// attempt runs the experiment driver once, under panic isolation: a
// panicking driver (or batch hook) is recovered into a *JobError carrying
// the value and stack, and the worker lives on. Completed row batches are
// checkpointed as they land, so whatever ends this attempt, the next one —
// or a resubmission — resumes where it stopped.
//
// A sharded attempt (Spec.Rows set) ends in the harness's *ShardDoneError
// panic instead of returning a table; that is its success: the final sparse
// checkpoint — TotalBatches now known — is recorded, persisted, and the
// attempt reports (nil, nil).
func (p *Pool) attempt(ctx context.Context, j *job, ck **harness.Checkpoint) (tbl *harness.Table, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if done, ok := r.(*harness.ShardDoneError); ok && j.spec.Rows != nil {
			*ck = done.Checkpoint
			p.store.save(j.spec, done.Checkpoint)
			p.mu.Lock()
			j.ck = done.Checkpoint
			j.batchesDone = done.Checkpoint.Computed()
			p.mu.Unlock()
			tbl, err = nil, nil
			return
		}
		p.metrics.panics.Inc()
		je := &JobError{ID: j.id, Experiment: j.spec.Experiment, Value: r, Stack: debug.Stack()}
		if cause, ok := r.(error); ok {
			je.Cause = cause
		}
		err = je
	}()
	report, closeReport := p.reportSink(j)
	defer closeReport()
	driver, _ := lookup(j.spec.Experiment)
	cfg := harness.Config{
		Obs:     report,
		Quick:   j.spec.Quick,
		Seed:    j.spec.Seed,
		Workers: j.spec.Workers,
		Ctx:     ctx,
		Resume:  *ck,
		OnBatch: func(c *harness.Checkpoint) {
			p.metrics.batches.Inc()
			snap := c.Clone()
			*ck = snap
			p.mu.Lock()
			j.batchesDone = snap.Computed()
			j.ck = snap
			p.mu.Unlock()
			p.store.save(j.spec, snap)
			if p.opts.BatchHook != nil {
				p.opts.BatchHook(j.id, snap)
			}
		},
	}
	if j.spec.Rows != nil {
		cfg.RowSelect = j.spec.Rows.Selected
	}
	return driver(cfg), nil
}

// Checkpoint returns the job's latest checkpoint snapshot — updated batch by
// batch while the job runs, and holding the final sparse checkpoint (with
// TotalBatches set) once a sharded job succeeds. The second return
// distinguishes an unknown ID (false) from a known job with no checkpoint
// yet (nil, true). The returned checkpoint is a shared snapshot the pool no
// longer mutates; callers must treat it as read-only.
func (p *Pool) Checkpoint(id string) (*harness.Checkpoint, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return nil, false
	}
	return j.ck, true
}
