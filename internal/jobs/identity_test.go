package jobs_test

import (
	"sync"
	"testing"
	"time"

	"locality/internal/jobs"
)

// TestIdempotentSubmitDedups: with Options.Idempotent, resubmitting the
// same determinism identity returns the existing job — across the queued,
// running and succeeded states — while failed/cancelled jobs recompute.
func TestIdempotentSubmitDedups(t *testing.T) {
	p := jobs.New(jobs.Options{Workers: 2, Idempotent: true})
	defer closePool(t, p)

	spec := jobs.Spec{Experiment: "E8", Quick: true, Seed: 7}
	first, err := p.SubmitTenant("", spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if first.Deduped {
		t.Fatal("first submission marked deduped")
	}
	dup, err := p.SubmitTenant("", spec)
	if err != nil {
		t.Fatalf("duplicate submit: %v", err)
	}
	if !dup.Deduped || dup.ID != first.ID {
		t.Fatalf("duplicate not deduped: %+v vs first %+v", dup, first)
	}
	if j := waitTerminal(t, p, first.ID); j.State != jobs.StateSucceeded {
		t.Fatalf("job failed: %s %q", j.State, j.Error)
	}
	// Succeeded jobs still dedup: the result is already computed.
	dup2, err := p.SubmitTenant("", spec)
	if err != nil || !dup2.Deduped || dup2.ID != first.ID {
		t.Fatalf("post-success dedup: %+v, %v", dup2, err)
	}
	// Timeout and Workers are not identity: they must dedup too.
	alt := spec
	alt.Workers = 3
	alt.Timeout = time.Minute
	dup3, err := p.SubmitTenant("", alt)
	if err != nil || !dup3.Deduped || dup3.ID != first.ID {
		t.Fatalf("workers/timeout changed identity: %+v, %v", dup3, err)
	}
	// A different seed is a different job.
	other := spec
	other.Seed = 8
	fresh, err := p.SubmitTenant("", other)
	if err != nil || fresh.Deduped || fresh.ID == first.ID {
		t.Fatalf("distinct seed deduped: %+v, %v", fresh, err)
	}
}

// TestIdempotentCancelledRecomputes: a cancelled job must not satisfy later
// submissions — the caller asked for the result and never got one.
func TestIdempotentCancelledRecomputes(t *testing.T) {
	// One worker pinned on a long job so the target job stays queued and
	// can be cancelled before it starts.
	p := jobs.New(jobs.Options{Workers: 1, Idempotent: true})
	defer closePool(t, p)

	blocker, err := p.SubmitTenant("", jobs.Spec{Experiment: "E12", Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := jobs.Spec{Experiment: "E8", Quick: true, Seed: 77}
	queued, err := p.SubmitTenant("", spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if j := waitTerminal(t, p, queued.ID); j.State != jobs.StateCancelled {
		t.Fatalf("state %s, want cancelled", j.State)
	}
	res, err := p.SubmitTenant("", spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deduped || res.ID == queued.ID {
		t.Fatalf("cancelled job satisfied a resubmission: %+v", res)
	}
	waitTerminal(t, p, blocker.ID)
	waitTerminal(t, p, res.ID)
}

// TestIdempotentConcurrentSingleExecution is the satellite acceptance test:
// the same identity submitted N times concurrently yields exactly one job,
// one execution, and byte-identical bodies for every caller.
func TestIdempotentConcurrentSingleExecution(t *testing.T) {
	want, _ := runDirect(t, jobs.Spec{Experiment: "E8", Quick: true, Seed: 3})
	p := jobs.New(jobs.Options{Workers: 4, QueueDepth: 4, Idempotent: true})
	defer closePool(t, p)

	const n = 32
	spec := jobs.Spec{Experiment: "E8", Quick: true, Seed: 3}
	results := make([]jobs.SubmitResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = p.SubmitTenant("", spec)
		}(i)
	}
	wg.Wait()

	fresh := 0
	id := ""
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if id == "" {
			id = results[i].ID
		}
		if results[i].ID != id {
			t.Fatalf("two job IDs for one identity: %s and %s", id, results[i].ID)
		}
		if !results[i].Deduped {
			fresh++
		}
	}
	if fresh != 1 {
		t.Errorf("%d fresh submissions for one identity, want exactly 1", fresh)
	}
	if got := len(p.List()); got != 1 {
		t.Errorf("pool holds %d jobs, want 1", got)
	}
	j := waitTerminal(t, p, id)
	if j.State != jobs.StateSucceeded {
		t.Fatalf("state %s: %s", j.State, j.Error)
	}
	if j.Output != want {
		t.Errorf("deduped job output differs from direct run")
	}
	if j.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (single execution)", j.Attempts)
	}
}

// FuzzIdentityKey smoke-checks the idempotency hash: fixed width,
// deterministic, sensitive to every identity field, insensitive to the
// execution-only fields.
func FuzzIdentityKey(f *testing.F) {
	f.Add("E8", true, uint64(7), 0, 0)
	f.Add("E12", false, uint64(0), 4, 1)
	f.Add("", false, uint64(1<<63), 2, 0)
	f.Add("A1\x00evil", true, uint64(42), 7, 3)
	f.Fuzz(func(t *testing.T, exp string, quick bool, seed uint64, mod, keep int) {
		spec := jobs.Spec{Experiment: exp, Quick: quick, Seed: seed}
		if mod > 1 {
			if keep < 0 {
				keep = -keep
			}
			spec.Rows = &jobs.RowSpec{Mod: mod, Keep: keep % mod}
		}
		key := spec.IdentityKey()
		if len(key) != 64 {
			t.Fatalf("key length %d, want 64 hex chars", len(key))
		}
		if spec.IdentityKey() != key {
			t.Fatal("IdentityKey not deterministic")
		}
		// Each identity field must perturb the key.
		alt := spec
		alt.Seed++
		if alt.IdentityKey() == key {
			t.Fatal("seed change did not change the key")
		}
		alt = spec
		alt.Quick = !alt.Quick
		if alt.IdentityKey() == key {
			t.Fatal("quick change did not change the key")
		}
		alt = spec
		alt.Experiment += "x"
		if alt.IdentityKey() == key {
			t.Fatal("experiment change did not change the key")
		}
		alt = spec
		if alt.Rows == nil {
			alt.Rows = &jobs.RowSpec{Mod: 2, Keep: 1}
		} else {
			alt.Rows = nil
		}
		if alt.IdentityKey() == key {
			t.Fatal("rows change did not change the key")
		}
		// Execution-only fields must not.
		alt = spec
		alt.Workers = 9
		alt.Timeout = time.Hour
		if alt.IdentityKey() != key {
			t.Fatal("workers/timeout leaked into the identity")
		}
	})
}
