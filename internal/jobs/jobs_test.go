package jobs_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"runtime"
	"testing"
	"time"

	"locality/internal/harness"
	"locality/internal/jobs"
)

// runDirect produces the unsupervised ground truth for a spec: the rendered
// table bytes and the number of row batches the sweep records.
func runDirect(t *testing.T, spec jobs.Spec) (string, int) {
	t.Helper()
	driver, ok := harness.ByID(spec.Experiment)
	if !ok {
		driver, ok = harness.ByIDSupplementary(spec.Experiment)
	}
	if !ok {
		t.Fatalf("unknown experiment %s", spec.Experiment)
	}
	batches := 0
	tbl := driver(harness.Config{Quick: spec.Quick, Seed: spec.Seed,
		OnBatch: func(*harness.Checkpoint) { batches++ }})
	var buf bytes.Buffer
	tbl.Render(&buf)
	return buf.String(), batches
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, p *jobs.Pool, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := p.Get(id)
		if !ok {
			t.Fatalf("job %s unknown", id)
		}
		if j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	j, _ := p.Get(id)
	t.Fatalf("job %s not terminal after 30s (state %s)", id, j.State)
	return jobs.Job{}
}

// checkGoroutines asserts the goroutine count settles back near the
// baseline: the pool must reap every goroutine it started.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func closePool(t *testing.T, p *jobs.Pool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestSubmitRunSucceeds(t *testing.T) {
	spec := jobs.Spec{Experiment: "E8", Quick: true, Seed: 7}
	want, _ := runDirect(t, spec)
	before := runtime.NumGoroutine()
	p := jobs.New(jobs.Options{Workers: 2})
	id, err := p.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	j := waitTerminal(t, p, id)
	if j.State != jobs.StateSucceeded {
		t.Fatalf("state %s, error %q", j.State, j.Error)
	}
	if j.Output != want {
		t.Errorf("supervised output differs from direct run:\n%s", j.Output)
	}
	if j.Attempts != 1 || j.BatchesDone == 0 {
		t.Errorf("attempts %d, batches %d", j.Attempts, j.BatchesDone)
	}
	closePool(t, p)
	checkGoroutines(t, before)
}

// TestKillResubmitByteIdentical is the acceptance scenario: a sweep is
// killed mid-run (pool shut down after the job is cancelled), a fresh pool
// over the same checkpoint directory resumes it, and the final output is
// byte-identical to an uninterrupted run — recomputing only the missing
// rows.
func TestKillResubmitByteIdentical(t *testing.T) {
	spec := jobs.Spec{Experiment: "E12", Quick: true, Seed: 11}
	want, total := runDirect(t, spec)
	if total < 3 {
		t.Fatalf("E12 records %d batches; need >= 3", total)
	}
	kill := total / 2
	dir := t.TempDir()
	before := runtime.NumGoroutine()

	var p1 *jobs.Pool
	p1 = jobs.New(jobs.Options{Workers: 1, CheckpointDir: dir,
		BatchHook: func(id string, ck *harness.Checkpoint) {
			if len(ck.Batches) == kill {
				p1.Cancel(id)
			}
		}})
	id, err := p1.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	j := waitTerminal(t, p1, id)
	if j.State != jobs.StateCancelled {
		t.Fatalf("first run: state %s (error %q), want cancelled", j.State, j.Error)
	}
	if j.BatchesDone != kill || j.ErrorKind != "cancelled" {
		t.Fatalf("first run: %d batches checkpointed, kind %q", j.BatchesDone, j.ErrorKind)
	}
	closePool(t, p1)

	// Second pool, same directory: the resubmitted job resumes.
	fresh := 0
	p2 := jobs.New(jobs.Options{Workers: 1, CheckpointDir: dir,
		BatchHook: func(string, *harness.Checkpoint) { fresh++ }})
	id2, err := p2.Submit(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	j2 := waitTerminal(t, p2, id2)
	if j2.State != jobs.StateSucceeded {
		t.Fatalf("resumed run: state %s, error %q", j2.State, j2.Error)
	}
	if j2.Output != want {
		t.Errorf("resumed output not byte-identical:\n--- want ---\n%s--- got ---\n%s", want, j2.Output)
	}
	if fresh != total-kill {
		t.Errorf("resume recomputed %d batches, want %d", fresh, total-kill)
	}
	// Success clears the checkpoint file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("checkpoint dir not cleared after success: %v", entries)
	}
	closePool(t, p2)
	checkGoroutines(t, before)
}

// TestRetryResumesFromCheckpoint: a transient mid-sweep panic consumes one
// attempt of the retry budget; the second attempt resumes from the
// checkpoint and the final output is still byte-identical.
func TestRetryResumesFromCheckpoint(t *testing.T) {
	spec := jobs.Spec{Experiment: "E4", Quick: true, Seed: 9}
	want, total := runDirect(t, spec)
	if total < 2 {
		t.Fatalf("E4 records %d batches; need >= 2", total)
	}
	chaosed := false
	secondAttempt := 0
	p := jobs.New(jobs.Options{Workers: 1, RetryBudget: 2,
		BatchHook: func(id string, ck *harness.Checkpoint) {
			if !chaosed {
				chaosed = true
				panic("chaos: injected transient fault")
			}
			secondAttempt++
		}})
	id, err := p.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	j := waitTerminal(t, p, id)
	if j.State != jobs.StateSucceeded {
		t.Fatalf("state %s, error %q", j.State, j.Error)
	}
	if j.Attempts != 2 {
		t.Errorf("attempts %d, want 2", j.Attempts)
	}
	if j.Output != want {
		t.Errorf("retried output not byte-identical:\n%s", j.Output)
	}
	// Attempt 1 checkpointed its first batch before panicking; attempt 2
	// replays it and computes the rest.
	if secondAttempt != total-1 {
		t.Errorf("second attempt computed %d batches, want %d", secondAttempt, total-1)
	}
	closePool(t, p)
}

// TestPanicIsolation: a persistently panicking job fails with a structured
// *JobError classification and the worker survives to run the next job.
func TestPanicIsolation(t *testing.T) {
	p := jobs.New(jobs.Options{Workers: 1,
		BatchHook: func(id string, ck *harness.Checkpoint) {
			if id == "job-0" {
				panic("chaos: persistent fault")
			}
		}})
	id, err := p.Submit(jobs.Spec{Experiment: "E8", Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	j := waitTerminal(t, p, id)
	if j.State != jobs.StateFailed || j.ErrorKind != "panic" {
		t.Fatalf("state %s kind %q, want failed/panic", j.State, j.ErrorKind)
	}
	// The worker that recovered the panic still runs the next job.
	id2, err := p.Submit(jobs.Spec{Experiment: "E8", Quick: true, Seed: 2})
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	if j2 := waitTerminal(t, p, id2); j2.State != jobs.StateSucceeded {
		t.Fatalf("job after panic: state %s, error %q", j2.State, j2.Error)
	}
	closePool(t, p)
}

// TestQueueFullShed: the bounded queue sheds excess submissions with a
// structured reason instead of buffering or blocking.
func TestQueueFullShed(t *testing.T) {
	hold := make(chan struct{})
	held := make(chan struct{}, 16)
	p := jobs.New(jobs.Options{Workers: 1, QueueDepth: 1,
		BatchHook: func(id string, ck *harness.Checkpoint) {
			if len(ck.Batches) == 1 {
				held <- struct{}{}
				<-hold
			}
		}})
	idA, err := p.Submit(jobs.Spec{Experiment: "E8", Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("submit A: %v", err)
	}
	<-held // worker is parked inside job A
	idB, err := p.Submit(jobs.Spec{Experiment: "E8", Quick: true, Seed: 2})
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}
	_, err = p.Submit(jobs.Spec{Experiment: "E8", Quick: true, Seed: 3})
	if err == nil {
		t.Fatal("third submission accepted by a full queue")
	}
	var shed *jobs.ShedError
	if !errors.As(err, &shed) || !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("shed error %v does not classify as ErrQueueFull", err)
	}
	if shed.QueueLen != 1 || shed.QueueCap != 1 {
		t.Errorf("shed reports queue %d/%d", shed.QueueLen, shed.QueueCap)
	}
	close(hold)
	if j := waitTerminal(t, p, idA); j.State != jobs.StateSucceeded {
		t.Errorf("job A: %s (%s)", j.State, j.Error)
	}
	if j := waitTerminal(t, p, idB); j.State != jobs.StateSucceeded {
		t.Errorf("job B: %s (%s)", j.State, j.Error)
	}
	if list := p.List(); len(list) != 2 || list[0].ID != idA || list[1].ID != idB {
		t.Errorf("List order wrong: %+v", list)
	}
	closePool(t, p)
}

// TestUnknownExperimentShed: validation happens at submission time.
func TestUnknownExperimentShed(t *testing.T) {
	p := jobs.New(jobs.Options{Workers: 1})
	_, err := p.Submit(jobs.Spec{Experiment: "E99"})
	if !errors.Is(err, jobs.ErrUnknownExperiment) {
		t.Fatalf("got %v, want ErrUnknownExperiment", err)
	}
	closePool(t, p)
}

// TestSubmitWhileDraining: shutdown flips submissions to structured
// rejection.
func TestSubmitWhileDraining(t *testing.T) {
	p := jobs.New(jobs.Options{Workers: 1})
	closePool(t, p)
	if !p.Draining() {
		t.Fatal("pool not draining after Close")
	}
	_, err := p.Submit(jobs.Spec{Experiment: "E8", Quick: true})
	if !errors.Is(err, jobs.ErrDraining) {
		t.Fatalf("got %v, want ErrDraining", err)
	}
}

// TestCancelQueuedJob: a job cancelled before a worker picks it up never
// runs.
func TestCancelQueuedJob(t *testing.T) {
	hold := make(chan struct{})
	held := make(chan struct{}, 16)
	p := jobs.New(jobs.Options{Workers: 1, QueueDepth: 2,
		BatchHook: func(id string, ck *harness.Checkpoint) {
			if id == "job-0" && len(ck.Batches) == 1 {
				held <- struct{}{}
				<-hold
			}
		}})
	if _, err := p.Submit(jobs.Spec{Experiment: "E8", Quick: true, Seed: 1}); err != nil {
		t.Fatalf("submit A: %v", err)
	}
	<-held
	idB, err := p.Submit(jobs.Spec{Experiment: "E8", Quick: true, Seed: 2})
	if err != nil {
		t.Fatalf("submit B: %v", err)
	}
	if err := p.Cancel(idB); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if err := p.Cancel("job-404"); !errors.Is(err, jobs.ErrUnknownJob) {
		t.Errorf("cancel unknown: %v", err)
	}
	close(hold)
	j := waitTerminal(t, p, idB)
	if j.State != jobs.StateCancelled || j.BatchesDone != 0 || j.Attempts != 0 {
		t.Fatalf("queued-cancelled job ran: %+v", j)
	}
	closePool(t, p)
}

// TestJobDeadline: Spec.Timeout bounds the run and classifies as a
// deadline failure, not a cancellation.
func TestJobDeadline(t *testing.T) {
	p := jobs.New(jobs.Options{Workers: 1, RetryBudget: 3})
	id, err := p.Submit(jobs.Spec{Experiment: "E12", Quick: true, Seed: 3, Timeout: time.Nanosecond})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	j := waitTerminal(t, p, id)
	if j.State != jobs.StateFailed || j.ErrorKind != "deadline" {
		t.Fatalf("state %s kind %q, want failed/deadline", j.State, j.ErrorKind)
	}
	if j.Attempts > 1 {
		t.Errorf("deadline burned %d retry attempts, want at most 1", j.Attempts)
	}
	closePool(t, p)
}

// TestDrainForcedCancellation: a drain deadline that expires with work
// still running force-cancels it — the job lands cancelled with its
// progress checkpointed, every worker goroutine exits, and Close reports
// the forced drain.
func TestDrainForcedCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	started := make(chan struct{}, 16)
	p := jobs.New(jobs.Options{Workers: 1, CheckpointDir: dir,
		BatchHook: func(id string, ck *harness.Checkpoint) {
			if len(ck.Batches) == 1 {
				started <- struct{}{}
			}
			time.Sleep(30 * time.Millisecond)
		}})
	id, err := p.Submit(jobs.Spec{Experiment: "E12", Quick: true, Seed: 5})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	err = p.Close(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want DeadlineExceeded cause", err)
	}
	j, _ := p.Get(id)
	if j.State != jobs.StateCancelled {
		t.Fatalf("state %s (error %q), want cancelled", j.State, j.Error)
	}
	if j.BatchesDone == 0 {
		t.Error("no progress checkpointed before forced cancel")
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 1 {
		t.Errorf("checkpoint file count %d, want 1", len(entries))
	}
	checkGoroutines(t, before)
	// A second Close is a no-op wait, not a double-close panic.
	if err := p.Close(context.Background()); err != nil {
		t.Errorf("idempotent close: %v", err)
	}
}

// TestParallelSpecByteIdentical asserts Spec.Workers changes only wall-clock
// behavior: a parallel job's output and checkpoint trajectory are
// byte-identical to the sequential job's.
func TestParallelSpecByteIdentical(t *testing.T) {
	want, wantBatches := runDirect(t, jobs.Spec{Experiment: "E4", Quick: true, Seed: 7})
	before := runtime.NumGoroutine()
	p := jobs.New(jobs.Options{Workers: 1})
	id, err := p.Submit(jobs.Spec{Experiment: "E4", Quick: true, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	j := waitTerminal(t, p, id)
	if j.State != jobs.StateSucceeded {
		t.Fatalf("state %s, error %q", j.State, j.Error)
	}
	if j.Output != want {
		t.Errorf("parallel job output differs from sequential direct run:\n%s", j.Output)
	}
	if j.BatchesDone != wantBatches {
		t.Errorf("parallel job checkpointed %d batches, want %d", j.BatchesDone, wantBatches)
	}
	closePool(t, p)
	checkGoroutines(t, before)
}
