package jobs_test

// Sharded-job and robustness-satellite coverage: Spec.Rows turns a job into
// one shard of a cluster sweep whose product is its checkpoint; List order
// is deterministic; Cancel is safe in the queued and retry-backoff windows.

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"testing"
	"time"

	"locality/internal/harness"
	"locality/internal/jobs"
)

// TestShardedJobsMergeByteIdentical runs a sweep as three sharded jobs,
// merges their checkpoints with Adopt, and replays the merged checkpoint —
// the rebuilt table must match the direct run byte for byte. This is the
// single-process version of the coordinator's whole job.
func TestShardedJobsMergeByteIdentical(t *testing.T) {
	spec := jobs.Spec{Experiment: "E4", Quick: true, Seed: 7}
	want, total := runDirect(t, spec)
	const shards = 3
	if total < shards {
		t.Fatalf("E4 records %d batches; need >= %d", total, shards)
	}
	dir := t.TempDir()
	p := jobs.New(jobs.Options{Workers: shards, CheckpointDir: dir})

	ids := make([]string, shards)
	for k := range ids {
		s := spec
		s.Rows = &jobs.RowSpec{Mod: shards, Keep: k}
		id, err := p.Submit(s)
		if err != nil {
			t.Fatalf("submit shard %d: %v", k, err)
		}
		ids[k] = id
	}

	merged := &harness.Checkpoint{Experiment: spec.Experiment, Seed: spec.Seed, Quick: spec.Quick}
	for k, id := range ids {
		j := waitTerminal(t, p, id)
		if j.State != jobs.StateSucceeded {
			t.Fatalf("shard %d: state %s, error %q", k, j.State, j.Error)
		}
		if j.Output != "" {
			t.Errorf("shard %d rendered a table; sharded jobs must stay table-less", k)
		}
		ck, ok := p.Checkpoint(id)
		if !ok || ck == nil {
			t.Fatalf("shard %d: no checkpoint (known=%v)", k, ok)
		}
		if ck.TotalBatches != total {
			t.Errorf("shard %d: TotalBatches %d, want %d", k, ck.TotalBatches, total)
		}
		if j.BatchesDone != ck.Computed() {
			t.Errorf("shard %d: BatchesDone %d, checkpoint holds %d", k, j.BatchesDone, ck.Computed())
		}
		if _, err := merged.Adopt(ck, id); err != nil {
			t.Fatalf("adopt shard %d: %v", k, err)
		}
	}
	if !merged.Complete() {
		t.Fatalf("merged checkpoint incomplete: %d/%d", merged.Computed(), merged.TotalBatches)
	}

	driver, _ := harness.ByID(spec.Experiment)
	tbl := driver(harness.Config{Quick: spec.Quick, Seed: spec.Seed, Resume: merged})
	var buf bytes.Buffer
	tbl.Render(&buf)
	if buf.String() != want {
		t.Errorf("merged shard replay differs from direct run:\n--- want ---\n%s--- got ---\n%s", want, buf.String())
	}

	// Sharded success keeps the checkpoint files: the checkpoint is the
	// product, and a resubmitted shard must replay to instant completion.
	if entries, _ := os.ReadDir(dir); len(entries) != shards {
		t.Errorf("checkpoint file count %d after success, want %d", len(entries), shards)
	}
	closePool(t, p)

	fresh := 0
	p2 := jobs.New(jobs.Options{Workers: 1, CheckpointDir: dir,
		BatchHook: func(string, *harness.Checkpoint) { fresh++ }})
	s := spec
	s.Rows = &jobs.RowSpec{Mod: shards, Keep: 0}
	id, err := p2.Submit(s)
	if err != nil {
		t.Fatalf("resubmit shard 0: %v", err)
	}
	if j := waitTerminal(t, p2, id); j.State != jobs.StateSucceeded {
		t.Fatalf("resubmitted shard: state %s, error %q", j.State, j.Error)
	}
	if fresh != 0 {
		t.Errorf("resubmitted shard recomputed %d batches, want 0", fresh)
	}
	closePool(t, p2)
}

// TestRowSpecSelection pins the three-filter selection semantics and the
// canonical checkpoint key.
func TestRowSpecSelection(t *testing.T) {
	cases := []struct {
		spec *jobs.RowSpec
		sel  []int // selected indices among 0..5
		key  string
	}{
		{nil, []int{0, 1, 2, 3, 4, 5}, ""},
		{&jobs.RowSpec{}, []int{0, 1, 2, 3, 4, 5}, "m0k0"},
		{&jobs.RowSpec{Mod: 3, Keep: 1}, []int{1, 4}, "m3k1"},
		{&jobs.RowSpec{Mod: 3, Keep: 1, Skip: []int{4}}, []int{1}, "m3k1s4"},
		{&jobs.RowSpec{Include: []int{5, 0, 5}}, []int{0, 5}, "m0k0i0.5"},
		{&jobs.RowSpec{Mod: 2, Include: []int{1, 3}, Skip: []int{3}}, []int{1}, "m2k0i1.3s3"},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err != nil {
			t.Errorf("%+v: validate: %v", c.spec, err)
		}
		var got []int
		for i := 0; i < 6; i++ {
			if c.spec.Selected(i) {
				got = append(got, i)
			}
		}
		if !reflect.DeepEqual(got, c.sel) {
			t.Errorf("%+v: selected %v, want %v", c.spec, got, c.sel)
		}
		if k := c.spec.Key(); k != c.key {
			t.Errorf("%+v: key %q, want %q", c.spec, k, c.key)
		}
	}
}

// TestInvalidRowSpecShed: malformed row specs are shed at submission with a
// structured reason, like unknown experiments.
func TestInvalidRowSpecShed(t *testing.T) {
	p := jobs.New(jobs.Options{Workers: 1})
	defer closePool(t, p)
	for _, rows := range []*jobs.RowSpec{
		{Mod: -1},
		{Mod: 3, Keep: 3},
		{Mod: 0, Keep: 2},
		{Include: []int{-1}},
		{Skip: []int{0, -2}},
	} {
		_, err := p.Submit(jobs.Spec{Experiment: "E8", Quick: true, Rows: rows})
		var shed *jobs.ShedError
		if !errors.As(err, &shed) || !errors.Is(err, jobs.ErrInvalidRowSpec) {
			t.Errorf("rows %+v: got %v, want ShedError wrapping ErrInvalidRowSpec", rows, err)
		}
	}
}

// TestListDeterministicOrder: List returns jobs in submission order, byte
// stable across calls — the coordinator's aggregation and the /v1/jobs
// endpoint depend on it.
func TestListDeterministicOrder(t *testing.T) {
	hold := make(chan struct{})
	held := make(chan struct{}, 16)
	p := jobs.New(jobs.Options{Workers: 1, QueueDepth: 8,
		BatchHook: func(id string, ck *harness.Checkpoint) {
			if id == "job-0" && len(ck.Batches) == 1 {
				held <- struct{}{}
				<-hold
			}
		}})
	var ids []string
	for seed := uint64(1); seed <= 6; seed++ {
		id, err := p.Submit(jobs.Spec{Experiment: "E8", Quick: true, Seed: seed})
		if err != nil {
			t.Fatalf("submit seed %d: %v", seed, err)
		}
		ids = append(ids, id)
	}
	<-held // pool is mid-job; List must still be stable
	for call := 0; call < 2; call++ {
		list := p.List()
		if len(list) != len(ids) {
			t.Fatalf("List returned %d jobs, want %d", len(list), len(ids))
		}
		for i, j := range list {
			if j.ID != ids[i] {
				t.Fatalf("call %d: List[%d] = %s, want %s (submission order)", call, i, j.ID, ids[i])
			}
		}
	}
	close(hold)
	closePool(t, p)
}

// TestCancelDuringRetryBackoff: cancelling a job parked in its retry
// backoff wait lands it cancelled promptly — the hour-long backoff must not
// pin the worker, and the cancellation must not race the retry loop (this
// test is part of the -race suite).
func TestCancelDuringRetryBackoff(t *testing.T) {
	parked := make(chan string, 16)
	p := jobs.New(jobs.Options{Workers: 1, RetryBudget: 3,
		Backoff: harness.Backoff{Base: time.Hour},
		BatchHook: func(id string, ck *harness.Checkpoint) {
			if len(ck.Batches) == 1 {
				parked <- id
				panic("chaos: transient fault before the backoff wait")
			}
		}})
	id, err := p.Submit(jobs.Spec{Experiment: "E8", Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-parked
	time.Sleep(10 * time.Millisecond) // let the attempt unwind into the backoff wait
	if err := p.Cancel(id); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	j := waitTerminal(t, p, id) // fails the test in 30s — far short of the 1h backoff
	if j.State != jobs.StateCancelled || j.ErrorKind != "cancelled" {
		t.Fatalf("state %s kind %q (error %q), want cancelled", j.State, j.ErrorKind, j.Error)
	}
	if j.Attempts != 1 {
		t.Errorf("attempts %d, want 1 (cancel must not burn the retry budget)", j.Attempts)
	}
	closePool(t, p)
}
