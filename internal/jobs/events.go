package jobs

import (
	"fmt"

	"locality/internal/tenant"
)

// Event is one progress notification on a job's event stream: emitted when
// the job starts running, after every freshly committed row batch, and once
// more — with Terminal set — when the job reaches a terminal state.
type Event struct {
	// JobID names the job the event describes.
	JobID string `json:"job_id"`
	// Seq increases by one per event published for the job, so a consumer
	// can detect dropped progress events (a slow subscriber's buffer sheds
	// intermediate events rather than stalling the pool; the terminal event
	// is never lost because Done closes regardless).
	Seq uint64 `json:"seq"`
	// State is the job's lifecycle position when the event was published.
	State State `json:"state"`
	// BatchesDone and Attempts mirror the snapshot fields of Job.
	BatchesDone int `json:"batches_done"`
	Attempts    int `json:"attempts"`
	// Terminal marks the final event of the stream.
	Terminal bool `json:"terminal,omitempty"`
}

// Subscription is one live event stream over a job, created by
// Pool.Subscribe and released by Pool.Unsubscribe. The pool publishes into
// Events without ever blocking — when the buffer is full, intermediate
// progress events are dropped (Seq exposes the gaps) — and closes Done when
// the job reaches a terminal state, including cancellation during pool
// drain. After Done the subscriber reads the authoritative final snapshot
// from Pool.Get.
type Subscription struct {
	events chan Event
	done   chan struct{}
	jobID  string
	ten    *tenant.Tenant
	// released guards double-release of the tenant's stream slot; pool mutex.
	released bool
}

// Events is the buffered progress channel. The pool never closes it; wait
// on Done for termination.
func (s *Subscription) Events() <-chan Event { return s.events }

// Done is closed when the job reaches a terminal state (or already had,
// at subscription time).
func (s *Subscription) Done() <-chan struct{} { return s.done }

// JobID returns the subscribed job's ID.
func (s *Subscription) JobID() string { return s.jobID }

// Subscribe opens an event stream over a job on behalf of the tenant owning
// apiKey, charging the tenant's concurrent-stream quota. buf bounds the
// progress buffer (<=0 selects a default of 16). Rejections are structured:
// ErrUnknownJob for an ID the pool never issued, a *tenant.LimitError
// (tenant.ErrStreamLimit, tenant.ErrExhausted) for quota rejections.
//
// A subscription on a job that is already terminal succeeds with Done
// already closed — the caller observes the terminal state immediately.
func (p *Pool) Subscribe(apiKey, id string, buf int) (*Subscription, error) {
	if buf <= 0 {
		buf = 16
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	ten, err := p.tenants.Lookup(apiKey)
	if err != nil {
		return nil, err
	}
	if err := p.tenants.AcquireStream(ten); err != nil {
		p.metrics.tenantShed(ten, err)
		return nil, err
	}
	p.metrics.streamOpened(ten)
	sub := &Subscription{
		events: make(chan Event, buf),
		done:   make(chan struct{}),
		jobID:  id,
		ten:    ten,
	}
	if j.state.Terminal() {
		close(sub.done)
		return sub, nil
	}
	j.subs = append(j.subs, sub)
	return sub, nil
}

// Unsubscribe releases the subscription's stream slot and detaches it from
// the job. Safe to call after the job terminated, and idempotent.
func (p *Pool) Unsubscribe(sub *Subscription) {
	if sub == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if sub.released {
		return
	}
	sub.released = true
	p.tenants.ReleaseStream(sub.ten)
	j, ok := p.jobs[sub.jobID]
	if !ok {
		return
	}
	for i, s := range j.subs {
		if s == sub {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			break
		}
	}
}

// publishLocked fans one progress event out to every subscriber without
// blocking: a full buffer drops the event (Seq exposes the gap). Callers
// hold the pool mutex.
func (j *job) publishLocked() {
	if len(j.subs) == 0 {
		return
	}
	j.eventSeq++
	ev := Event{
		JobID:       j.id,
		Seq:         j.eventSeq,
		State:       j.state,
		BatchesDone: j.batchesDone,
		Attempts:    j.attempts,
	}
	for _, s := range j.subs {
		select {
		case s.events <- ev:
		default:
		}
	}
}

// takeSubsLocked emits the terminal event to every subscriber and detaches
// them from the job; the caller must pass the returned subscriptions to
// closeSubs after releasing the pool mutex. The terminal event itself is
// best-effort like any other (a full buffer drops it), but closing Done is
// not — every subscriber observes termination.
func (j *job) takeSubsLocked() []*Subscription {
	subs := j.subs
	if len(subs) == 0 {
		return nil
	}
	j.subs = nil
	j.eventSeq++
	ev := Event{
		JobID:       j.id,
		Seq:         j.eventSeq,
		State:       j.state,
		BatchesDone: j.batchesDone,
		Attempts:    j.attempts,
		Terminal:    true,
	}
	for _, s := range subs {
		select {
		case s.events <- ev:
		default:
		}
	}
	return subs
}

// closeSubs closes the Done channels of detached subscriptions. Runs
// outside the pool mutex.
func closeSubs(subs []*Subscription) {
	for _, s := range subs {
		close(s.done)
	}
}
