package sim_test

// Hardening suite: misbehaving machines (panics, over-degree sends),
// cooperative cancellation, the wall-clock watchdog, and goroutine hygiene.
// Both engines must report identical structured errors for identical
// misbehavior, and aborted concurrent runs must not leak goroutines.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"locality/internal/graph"
	"locality/internal/sim"
)

// panicAt returns a factory whose machine panics at the given step on the
// node with the given index (via Env.Node, which tests may inspect).
func panicAt(node, step int) sim.Factory {
	return func() sim.Machine {
		var env sim.Env
		return &sim.FuncMachine{
			OnInit: func(e sim.Env) { env = e },
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) {
				if env.Node == node && round == step {
					panic("boom")
				}
				return sim.Broadcast(env.Degree, round), false
			},
		}
	}
}

func neverHalt() sim.Machine {
	return &sim.FuncMachine{
		OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) {
			return nil, false
		},
	}
}

func TestStepPanicStructured(t *testing.T) {
	g := graph.Ring(6)
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		_, err := sim.Run(g, sim.Config{Engine: engine, MaxRounds: 10}, panicAt(3, 4))
		if !errors.Is(err, sim.ErrNodePanic) {
			t.Fatalf("engine %v: error = %v, want ErrNodePanic", engine, err)
		}
		var ne *sim.NodeError
		if !errors.As(err, &ne) {
			t.Fatalf("engine %v: not a *NodeError: %v", engine, err)
		}
		if ne.Node != 3 || ne.Round != 4 {
			t.Errorf("engine %v: fault at node %d round %d, want node 3 round 4", engine, ne.Node, ne.Round)
		}
		if ne.Value != "boom" {
			t.Errorf("engine %v: panic value = %v, want boom", engine, ne.Value)
		}
		if len(ne.Stack) == 0 {
			t.Errorf("engine %v: no stack captured", engine)
		}
	}
}

func TestEnginesReportIdenticalFaults(t *testing.T) {
	// Two nodes misbehave in the same round: both engines must pick the
	// same (round, node)-minimal fault.
	g := graph.Ring(8)
	factory := func() sim.Machine {
		var env sim.Env
		return &sim.FuncMachine{
			OnInit: func(e sim.Env) { env = e },
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) {
				if round == 3 && (env.Node == 5 || env.Node == 2) {
					panic(env.Node)
				}
				return nil, false
			},
		}
	}
	var faults []*sim.NodeError
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		_, err := sim.Run(g, sim.Config{Engine: engine, MaxRounds: 10}, factory)
		var ne *sim.NodeError
		if !errors.As(err, &ne) {
			t.Fatalf("engine %v: %v", engine, err)
		}
		faults = append(faults, ne)
	}
	seq, conc := faults[0], faults[1]
	if seq.Node != conc.Node || seq.Round != conc.Round || seq.Value != conc.Value {
		t.Errorf("engines disagree: seq=(node %d, round %d, %v) conc=(node %d, round %d, %v)",
			seq.Node, seq.Round, seq.Value, conc.Node, conc.Round, conc.Value)
	}
	if seq.Node != 2 || seq.Round != 3 {
		t.Errorf("fault = (node %d, round %d), want the minimal (node 2, round 3)", seq.Node, seq.Round)
	}
}

func TestInitPanicStructured(t *testing.T) {
	g := graph.Path(4)
	factory := func() sim.Machine {
		return &sim.FuncMachine{
			OnInit: func(e sim.Env) {
				if e.Node == 1 {
					panic("bad init")
				}
			},
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) { return nil, true },
		}
	}
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		_, err := sim.Run(g, sim.Config{Engine: engine}, factory)
		var ne *sim.NodeError
		if !errors.As(err, &ne) || !errors.Is(err, sim.ErrNodePanic) {
			t.Fatalf("engine %v: %v", engine, err)
		}
		if ne.Node != 1 || ne.Round != 0 {
			t.Errorf("engine %v: fault (node %d, round %d), want (1, 0)", engine, ne.Node, ne.Round)
		}
	}
}

func TestOutputPanicStructured(t *testing.T) {
	g := graph.Path(3)
	factory := func() sim.Machine {
		var env sim.Env
		return &sim.FuncMachine{
			OnInit: func(e sim.Env) { env = e },
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) { return nil, true },
			OnOutput: func() any {
				if env.Node == 2 {
					panic("bad output")
				}
				return nil
			},
		}
	}
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		_, err := sim.Run(g, sim.Config{Engine: engine}, factory)
		var ne *sim.NodeError
		if !errors.As(err, &ne) || !errors.Is(err, sim.ErrNodePanic) {
			t.Fatalf("engine %v: %v", engine, err)
		}
		if ne.Node != 2 || ne.Round != -1 {
			t.Errorf("engine %v: fault (node %d, round %d), want (2, -1)", engine, ne.Node, ne.Round)
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	g := graph.Ring(16)
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel()
		}()
		startT := time.Now()
		_, err := sim.RunContext(ctx, g, sim.Config{Engine: engine, MaxRounds: 1 << 30}, func() sim.Machine { return neverHalt() })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("engine %v: error = %v, want wrapped context.Canceled", engine, err)
		}
		if elapsed := time.Since(startT); elapsed > 2*time.Second {
			t.Errorf("engine %v: cancellation took %v", engine, elapsed)
		}
	}
}

func TestDeadlineWatchdog(t *testing.T) {
	// Machines sleep each step, so the wall clock expires long before the
	// round budget; the watchdog must fire and return ErrDeadline promptly.
	g := graph.Ring(4)
	slow := func() sim.Machine {
		return &sim.FuncMachine{
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) {
				time.Sleep(2 * time.Millisecond)
				return nil, false
			},
		}
	}
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		startT := time.Now()
		_, err := sim.Run(g, sim.Config{Engine: engine, MaxRounds: 1 << 30, Deadline: 30 * time.Millisecond}, slow)
		if !errors.Is(err, sim.ErrDeadline) {
			t.Fatalf("engine %v: error = %v, want ErrDeadline", engine, err)
		}
		if elapsed := time.Since(startT); elapsed > 2*time.Second {
			t.Errorf("engine %v: watchdog took %v to trip", engine, elapsed)
		}
	}
}

func TestNoGoroutineLeakOnAbort(t *testing.T) {
	g := graph.Ring(32)
	before := runtime.NumGoroutine()
	for trial := 0; trial < 5; trial++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		_, err := sim.RunContext(ctx, g, sim.Config{Engine: sim.EngineConcurrent, MaxRounds: 1 << 30},
			func() sim.Machine { return neverHalt() })
		cancel()
		if err == nil {
			t.Fatal("run with expired context succeeded")
		}
	}
	// Node goroutines exit via the abort channel; give the scheduler a
	// moment to run their deferred wg.Done paths before counting.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after aborted runs", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestNoGoroutineLeakOnNodeFault(t *testing.T) {
	g := graph.Ring(32)
	before := runtime.NumGoroutine()
	for trial := 0; trial < 5; trial++ {
		_, err := sim.Run(g, sim.Config{Engine: sim.EngineConcurrent, MaxRounds: 64}, panicAt(7, 3))
		if !errors.Is(err, sim.ErrNodePanic) {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after faulted runs", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMaxRoundsBothEnginesStructured(t *testing.T) {
	// ErrMaxRounds must carry the budget and remain errors.Is-testable on
	// both engines (regression companion to TestMaxRoundsEnforced).
	g := graph.Ring(6)
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		_, err := sim.Run(g, sim.Config{Engine: engine, MaxRounds: 3}, func() sim.Machine { return neverHalt() })
		if !errors.Is(err, sim.ErrMaxRounds) {
			t.Fatalf("engine %v: %v", engine, err)
		}
	}
}

func TestDeadlockedRunAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the abort grace period")
	}
	// One machine blocks forever inside Step. The watchdog must still
	// return (with an error noting the unreapable goroutine) instead of
	// hanging the caller forever.
	g := graph.Path(3)
	stuck := func() sim.Machine {
		var env sim.Env
		return &sim.FuncMachine{
			OnInit: func(e sim.Env) { env = e },
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) {
				if env.Node == 1 {
					select {} // deadlock
				}
				return nil, false
			},
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := sim.Run(g, sim.Config{Engine: sim.EngineConcurrent, MaxRounds: 1 << 30, Deadline: 20 * time.Millisecond}, stuck)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, sim.ErrDeadline) {
			t.Fatalf("error = %v, want ErrDeadline", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadlocked run hung instead of aborting")
	}
}
