// Package sim is the LOCAL-model simulator kernel.
//
// It implements the model of Linial [4] exactly as the paper states it
// (Section I): the graph is the communication topology; every vertex hosts a
// processor running the same algorithm; computation proceeds in synchronized
// rounds; in a round each processor computes and sends one message along each
// incident edge, delivered before the next round; the only efficiency measure
// is the number of rounds — local computation is free and messages are
// unbounded (they are arbitrary Go values here).
//
// The two model variants are configurations, not separate kernels:
//
//   - DetLOCAL: Config.IDs non-nil (unique IDs required, enforced),
//     Config.Randomized false. Nodes are otherwise identical.
//   - RandLOCAL: Config.IDs nil, Config.Randomized true; every node gets a
//     private deterministic random stream derived from Config.Seed, standing
//     in for the model's unbounded truly-random bits.
//
// Two engines execute the same Machine semantics: a fast deterministic
// sequential engine and a goroutine-per-node engine in which every directed
// edge is a Go channel. They are tested to produce identical results for the
// same seed, which is also a useful check that no Machine smuggles shared
// state between nodes.
package sim

import (
	"context"
	"errors"
	"fmt"
	"time"

	"locality/internal/ids"
	"locality/internal/rng"
)

// Message is an arbitrary value sent along an edge in one round. The LOCAL
// model does not meter message size. A nil Message means "nothing sent".
type Message any

// Env is everything a node knows at time zero: its degree, the global
// parameters n and Δ (common knowledge in the paper's model), its unique ID
// in DetLOCAL, its private random stream in RandLOCAL, and any
// problem-specific input (e.g. the colors of its incident edges for the
// sinkless problems).
type Env struct {
	Node   int // vertex index; for instrumentation ONLY — see note below
	N      int
	MaxDeg int
	Degree int
	ID     uint64
	HasID  bool
	Rand   *rng.Source
	Input  any
}

// Note: Env.Node exists so tests and verifiers can map outputs back to
// vertices. A Machine implementing a LOCAL algorithm must not branch on it;
// the engine-equivalence and ID-scheme tests are designed to catch abuses
// (sequential vs shuffled IDs must not change a DetLOCAL algorithm's
// correctness, and RandLOCAL machines run with Node-independent streams).

// Machine is the per-node state machine of a distributed algorithm.
//
// The kernel calls Init once, then Step once per step s = 1, 2, ...
// recv[p] is the message the neighbor at port p sent during step s-1 (nil at
// step 1 or if it sent nothing). The returned send slice is indexed by port;
// it may be nil (send nothing) or shorter than the degree (missing ports
// send nothing). When done is true, the final messages are still delivered
// and the node halts: Step is not called again and the node sends nothing in
// later steps. Output is read after the run completes.
//
// Round accounting. The paper's model is: in round r a processor computes
// and sends; messages are delivered before round r+1; the output may be
// computed from everything received, for free. A machine that halts at step
// s has therefore used s-1 communication rounds: its step-s computation
// consumed the round-(s-1) messages and produced only the output. In
// particular a machine that halts at its first Step is a 0-round algorithm
// in the sense of Theorem 4 (output is a function of Env alone). Result
// fields report this rounds convention, not raw steps.
type Machine interface {
	Init(env Env)
	Step(round int, recv []Message) (send []Message, done bool)
	Output() any
}

// Factory creates a fresh Machine for each node. Machines must not share
// mutable state through the factory; the concurrent engine will expose such
// bugs under the race detector.
type Factory func() Machine

// Engine selects the execution strategy.
type Engine int

const (
	// EngineSequential runs nodes in a deterministic order in one goroutine.
	EngineSequential Engine = iota + 1
	// EngineConcurrent runs one goroutine per node with a channel per
	// directed edge.
	EngineConcurrent
)

// Config describes a run.
type Config struct {
	// IDs holds the DetLOCAL identifiers; nil means the nodes have no IDs
	// (RandLOCAL). When non-nil it must assign a distinct ID to every vertex.
	IDs ids.Assignment
	// Randomized grants every node a private random stream derived from Seed.
	Randomized bool
	// Seed drives all node streams in a Randomized run.
	Seed uint64
	// Inputs optionally carries a per-vertex input value.
	Inputs []any
	// MaxRounds aborts runs that exceed it; 0 means 4n+64 (every natural
	// algorithm in this library is O(n)).
	MaxRounds int
	// Engine selects the executor; zero value means EngineSequential.
	Engine Engine
	// Deadline bounds the wall-clock duration of the run; 0 means no bound.
	// It is the watchdog that aborts a deadlocked or runaway run (a machine
	// stuck inside Step, a round that never completes) where the logical
	// MaxRounds budget cannot trigger. Expiry returns ErrDeadline.
	Deadline time.Duration
	// Arena, when non-nil, supplies reusable scratch buffers for the run's
	// machine table and inboxes, so a trial loop that reuses one Arena pays
	// the buffer allocations once instead of per run. Results never alias
	// arena memory. An Arena must not be shared by concurrent Runs.
	Arena *Arena
	// OnRound, when non-nil, is invoked once per completed step with the
	// step number (1, 2, ...) after every node has executed it and its
	// messages are in flight. It is a progress hook for supervision layers
	// (live job status, checkpoint granularity, cancellation tests); both
	// engines call it from the coordinating goroutine, in step order, and
	// it observes — never influences — the run: the callback must not
	// mutate machines or messages, and a run's Result is identical with or
	// without it.
	OnRound func(round int)
	// OnRoundStats, when non-nil, is the round-level telemetry hook: after
	// each completed step (immediately after OnRound) it receives that
	// step's RoundStats. Both engines call it from the coordinating
	// goroutine in step order and deliver identical sequences for
	// identical runs, and like OnRound it observes — never influences —
	// the run: with the hook nil the engines skip all stats accounting, so
	// a disabled run pays nothing (the sequential engine stays 0
	// allocs/round) and a Result is byte-identical either way.
	OnRoundStats func(RoundStats)
}

// RoundStats is one completed step's telemetry snapshot, delivered through
// Config.OnRoundStats. It exists for observability layers (internal/obs
// run reports); the LOCAL model itself meters none of these quantities.
type RoundStats struct {
	// Round is the step number (1, 2, ...), matching OnRound.
	Round int
	// Messages counts the non-nil messages sent during the step.
	Messages int64
	// Bytes approximates the payload bytes of those messages (see
	// MessageBytes); 0-cost message types contribute nothing.
	Bytes int64
	// Active is the number of nodes that executed Step this round (live at
	// the start of the step).
	Active int
	// Halted is the cumulative number of halted nodes at the end of the
	// step.
	Halted int
}

// MessageBytes approximates a message's wire size for telemetry: the byte
// length of string and []byte payloads, the machine width of fixed-size
// scalars, and 0 for every other type (the LOCAL model does not meter
// messages, so structured payloads are deliberately not reflected over —
// sizing must stay allocation-free on the hot path).
func MessageBytes(m Message) int64 {
	switch v := m.(type) {
	case string:
		return int64(len(v))
	case []byte:
		return int64(len(v))
	case bool, int8, uint8:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	case int, int64, uint, uint64, float64:
		return 8
	}
	return 0
}

// Result reports a completed run.
type Result struct {
	// Rounds is the LOCAL complexity measure of the run: the communication
	// rounds used until the last node halted (its halting step minus one;
	// see the Machine docs).
	Rounds int
	// Outputs[v] is node v's Output().
	Outputs []any
	// HaltRound[v] is the number of communication rounds node v used
	// (halting step minus one).
	HaltRound []int
	// MessagesSent counts non-nil messages (for instrumentation only; the
	// LOCAL model does not charge for them).
	MessagesSent int64
}

// ErrMaxRounds is returned when a run exceeds its round budget, wrapped with
// context; use errors.Is to test for it.
var ErrMaxRounds = errors.New("sim: exceeded maximum rounds")

// Run executes the algorithm on g under cfg.
func Run(g Topology, cfg Config, f Factory) (*Result, error) {
	return RunContext(context.Background(), g, cfg, f)
}

// RunContext is Run with cooperative cancellation: the run aborts cleanly
// (every node goroutine reaped) as soon as ctx is cancelled or its deadline
// passes, returning an error that wraps ctx.Err(). Cancellation is checked
// at round granularity, so a run whose machines return from Step aborts
// within one round; a machine stuck *inside* Step can only be abandoned by
// the Config.Deadline watchdog (Go cannot kill a goroutine).
func RunContext(ctx context.Context, g Topology, cfg Config, f Factory) (*Result, error) {
	n := g.N()
	if cfg.IDs != nil {
		if len(cfg.IDs) != n {
			return nil, fmt.Errorf("sim: %d IDs for %d vertices", len(cfg.IDs), n)
		}
		if !cfg.IDs.Unique() {
			return nil, errors.New("sim: duplicate vertex IDs (DetLOCAL requires unique IDs)")
		}
	}
	if cfg.Inputs != nil && len(cfg.Inputs) != n {
		return nil, fmt.Errorf("sim: %d inputs for %d vertices", len(cfg.Inputs), n)
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 4*n + 64
	}
	switch cfg.Engine {
	case EngineConcurrent:
		return runConcurrent(ctx, g, cfg, f)
	case EngineSequential, 0:
		return runSequential(ctx, g, cfg, f)
	default:
		return nil, fmt.Errorf("sim: unknown engine %d", cfg.Engine)
	}
}

// cancelErr wraps a context cancellation with round context.
func cancelErr(ctx context.Context, round int) error {
	return fmt.Errorf("sim: run cancelled at round %d: %w", round, context.Cause(ctx))
}

// deadlineErr reports a tripped Config.Deadline watchdog.
func deadlineErr(d time.Duration, round int) error {
	return fmt.Errorf("%w: budget %v, tripped at round %d", ErrDeadline, d, round)
}

// Topology is the read-only view of the communication graph the kernel
// needs. *graph.Graph satisfies it; the indirection lets tests use tiny
// hand-built topologies and keeps the kernel free of generator concerns.
type Topology interface {
	N() int
	Degree(v int) int
	// NeighborPort returns, for the edge at port p of v, the opposite
	// endpoint u and the port of the same edge at u.
	NeighborPort(v, p int) (u, rev int)
}

// makeEnv builds node v's initial knowledge.
func makeEnv(g Topology, cfg Config, maxDeg, v int) Env {
	env := Env{
		Node:   v,
		N:      g.N(),
		MaxDeg: maxDeg,
		Degree: g.Degree(v),
	}
	if cfg.IDs != nil {
		env.ID = cfg.IDs[v]
		env.HasID = true
	}
	if cfg.Randomized {
		env.Rand = rng.NewNode(cfg.Seed, v)
	}
	if cfg.Inputs != nil {
		env.Input = cfg.Inputs[v]
	}
	return env
}

func topologyMaxDegree(g Topology) int {
	// Generators precompute Δ; the interface stays minimal but the common
	// case skips the O(n) sweep.
	if md, ok := g.(interface{ MaxDegree() int }); ok {
		return md.MaxDegree()
	}
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}
