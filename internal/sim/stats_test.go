package sim_test

import (
	"testing"

	"locality/internal/graph"
	"locality/internal/mis"
	"locality/internal/sim"
)

// TestRoundStatsEngineEquivalence: both engines deliver identical RoundStats
// sequences for identical runs — the telemetry extension of the
// engine-equivalence guarantee.
func TestRoundStatsEngineEquivalence(t *testing.T) {
	g := graph.Ring(48)
	collect := func(engine sim.Engine) ([]sim.RoundStats, *sim.Result) {
		var stats []sim.RoundStats
		res, err := sim.Run(g, sim.Config{
			Engine:       engine,
			Randomized:   true,
			Seed:         11,
			OnRoundStats: func(s sim.RoundStats) { stats = append(stats, s) },
		}, mis.NewLubyFactory(mis.LubyOptions{}))
		if err != nil {
			t.Fatalf("engine %d: %v", engine, err)
		}
		return stats, res
	}
	seqStats, seqRes := collect(sim.EngineSequential)
	conStats, conRes := collect(sim.EngineConcurrent)

	if len(seqStats) == 0 {
		t.Fatal("sequential engine delivered no round stats")
	}
	if len(seqStats) != len(conStats) {
		t.Fatalf("stats length: sequential %d, concurrent %d", len(seqStats), len(conStats))
	}
	for i := range seqStats {
		if seqStats[i] != conStats[i] {
			t.Errorf("round %d: sequential %+v != concurrent %+v", i+1, seqStats[i], conStats[i])
		}
	}
	if seqRes.Rounds != conRes.Rounds || seqRes.MessagesSent != conRes.MessagesSent {
		t.Errorf("results diverge: sequential (rounds=%d msgs=%d) vs concurrent (rounds=%d msgs=%d)",
			seqRes.Rounds, seqRes.MessagesSent, conRes.Rounds, conRes.MessagesSent)
	}
}

// TestRoundStatsInternalConsistency pins the per-field semantics against the
// run's own Result: rounds are 1..haltStep, per-round messages sum to
// MessagesSent, Active never rises, Halted never falls and ends at n.
func TestRoundStatsInternalConsistency(t *testing.T) {
	g := graph.Ring(32)
	n := g.N()
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		var stats []sim.RoundStats
		res, err := sim.Run(g, sim.Config{
			Engine:       engine,
			OnRoundStats: func(s sim.RoundStats) { stats = append(stats, s) },
		}, ringFactory(16))
		if err != nil {
			t.Fatalf("engine %d: %v", engine, err)
		}
		if len(stats) != res.Rounds+1 {
			t.Fatalf("engine %d: %d stats for a %d-round run (halting step = rounds+1)",
				engine, len(stats), res.Rounds)
		}
		var msgs, bytes int64
		for i, s := range stats {
			if s.Round != i+1 {
				t.Errorf("engine %d: stats[%d].Round = %d, want %d", engine, i, s.Round, i+1)
			}
			msgs += s.Messages
			bytes += s.Bytes
			if i > 0 && s.Active > stats[i-1].Active {
				t.Errorf("engine %d: Active rose %d -> %d at round %d",
					engine, stats[i-1].Active, s.Active, s.Round)
			}
			if i > 0 && s.Halted < stats[i-1].Halted {
				t.Errorf("engine %d: Halted fell %d -> %d at round %d",
					engine, stats[i-1].Halted, s.Halted, s.Round)
			}
		}
		if msgs != res.MessagesSent {
			t.Errorf("engine %d: per-round messages sum to %d, Result.MessagesSent = %d",
				engine, msgs, res.MessagesSent)
		}
		// The ring machine sends the 3-byte "tok" on every port each step.
		if want := msgs * 3; bytes != want {
			t.Errorf("engine %d: bytes = %d, want %d", engine, bytes, want)
		}
		last := stats[len(stats)-1]
		if last.Halted != n {
			t.Errorf("engine %d: final Halted = %d, want %d", engine, last.Halted, n)
		}
		if stats[0].Active != n {
			t.Errorf("engine %d: first Active = %d, want %d", engine, stats[0].Active, n)
		}
	}
}

// TestRoundStatsInert: attaching the hook changes nothing observable about
// the run — the sim half of the observability contract's byte-identity
// guarantee.
func TestRoundStatsInert(t *testing.T) {
	g := graph.Ring(40)
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		run := func(hook func(sim.RoundStats)) *sim.Result {
			res, err := sim.Run(g, sim.Config{
				Engine: engine, Randomized: true, Seed: 3, OnRoundStats: hook,
			}, mis.NewLubyFactory(mis.LubyOptions{}))
			if err != nil {
				t.Fatalf("engine %d: %v", engine, err)
			}
			return res
		}
		off := run(nil)
		on := run(func(sim.RoundStats) {})
		if off.Rounds != on.Rounds || off.MessagesSent != on.MessagesSent {
			t.Errorf("engine %d: hook changed the run: off (rounds=%d msgs=%d) vs on (rounds=%d msgs=%d)",
				engine, off.Rounds, off.MessagesSent, on.Rounds, on.MessagesSent)
		}
		for v := range off.HaltRound {
			if off.HaltRound[v] != on.HaltRound[v] {
				t.Fatalf("engine %d: HaltRound[%d] differs: %d vs %d",
					engine, v, off.HaltRound[v], on.HaltRound[v])
			}
		}
	}
}

// TestSequentialZeroAllocsPerRoundWithStats extends the hot-path acceptance
// criterion to an armed telemetry hook: a no-op OnRoundStats sink must keep
// runSequential at 0 allocs/round (the accounting is plain integer
// arithmetic and RoundStats is passed by value).
func TestSequentialZeroAllocsPerRoundWithStats(t *testing.T) {
	g := graph.Ring(64)
	arena := &sim.Arena{}
	sink := func(sim.RoundStats) {}
	run := func(rounds int) {
		res, err := sim.Run(g, sim.Config{Arena: arena, MaxRounds: rounds + 8, OnRoundStats: sink},
			ringFactory(rounds))
		if err != nil || res.Rounds != rounds-1 {
			t.Fatalf("ring run: rounds=%v err=%v", res, err)
		}
	}
	run(8) // prime the arena so growth is not measured

	allocs := func(rounds int) float64 {
		return testing.AllocsPerRun(5, func() { run(rounds) })
	}
	short, long := allocs(64), allocs(1064)
	perRound := (long - short) / 1000
	if perRound > 0.01 {
		t.Errorf("sequential engine with stats hook allocates %.3f allocs/round (short %.0f, long %.0f), want 0",
			perRound, short, long)
	}
}

// TestMessageBytes pins the telemetry sizing table.
func TestMessageBytes(t *testing.T) {
	cases := []struct {
		m    sim.Message
		want int64
	}{
		{"tok", 3},
		{[]byte{1, 2, 3, 4}, 4},
		{true, 1},
		{int8(1), 1},
		{uint8(1), 1},
		{int16(1), 2},
		{uint16(1), 2},
		{int32(1), 4},
		{uint32(1), 4},
		{float32(1), 4},
		{int(1), 8},
		{int64(1), 8},
		{uint(1), 8},
		{uint64(1), 8},
		{float64(1), 8},
		{struct{ X int }{1}, 0}, // structured payloads are not reflected over
		{nil, 0},
	}
	for _, c := range cases {
		if got := sim.MessageBytes(c.m); got != c.want {
			t.Errorf("MessageBytes(%T %v) = %d, want %d", c.m, c.m, got, c.want)
		}
	}
}
