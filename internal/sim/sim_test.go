package sim_test

import (
	"errors"
	"reflect"
	"testing"

	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/rng"
	"locality/internal/sim"
)

var _ sim.Topology = (*graph.Graph)(nil)

// floodMin floods the minimum ID; every node halts once its view of the
// minimum is stable for diameter rounds. Used as a canonical multi-round
// algorithm for kernel tests (the output is the global min ID, and the round
// count is related to eccentricity).
type floodMin struct {
	env   sim.Env
	min   uint64
	known int // rounds since last improvement
	limit int
}

func newFloodMin(limit int) sim.Factory {
	return func() sim.Machine {
		return &floodMin{limit: limit}
	}
}

func (m *floodMin) Init(env sim.Env) {
	m.env = env
	m.min = env.ID
}

func (m *floodMin) Step(round int, recv []sim.Message) ([]sim.Message, bool) {
	improved := false
	for _, msg := range recv {
		if msg == nil {
			continue
		}
		if id := msg.(uint64); id < m.min {
			m.min = id
			improved = true
		}
	}
	if improved {
		m.known = 0
	} else {
		m.known++
	}
	if m.known >= m.limit {
		return nil, true
	}
	return sim.Broadcast(m.env.Degree, m.min), false
}

func (m *floodMin) Output() any { return m.min }

func TestFloodMinBothEngines(t *testing.T) {
	g := graph.Path(10)
	assignment := ids.Assignment{7, 3, 9, 1, 12, 14, 5, 8, 20, 11}
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		res, err := sim.Run(g, sim.Config{IDs: assignment, Engine: engine}, newFloodMin(12))
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		for v, o := range res.Outputs {
			if o.(uint64) != 1 {
				t.Errorf("engine %v: node %d output %v, want 1", engine, v, o)
			}
		}
		if res.Rounds == 0 || res.MessagesSent == 0 {
			t.Errorf("engine %v: suspicious accounting %+v", engine, res)
		}
	}
}

func TestEnginesProduceIdenticalResults(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 10; trial++ {
		g := graph.UniformTree(40, r)
		assignment := ids.Shuffled(40, r)
		seq, err := sim.Run(g, sim.Config{IDs: assignment, Engine: sim.EngineSequential}, newFloodMin(8))
		if err != nil {
			t.Fatal(err)
		}
		conc, err := sim.Run(g, sim.Config{IDs: assignment, Engine: sim.EngineConcurrent}, newFloodMin(8))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.Outputs, conc.Outputs) {
			t.Fatalf("trial %d: outputs differ between engines", trial)
		}
		if seq.Rounds != conc.Rounds {
			t.Fatalf("trial %d: rounds differ: seq=%d conc=%d", trial, seq.Rounds, conc.Rounds)
		}
		if seq.MessagesSent != conc.MessagesSent {
			t.Fatalf("trial %d: message counts differ: seq=%d conc=%d", trial, seq.MessagesSent, conc.MessagesSent)
		}
	}
}

func TestRandomizedEnginesAgree(t *testing.T) {
	// A randomized machine must see the same per-node stream in both engines.
	factory := func() sim.Machine {
		var env sim.Env
		var draw uint64
		return &sim.FuncMachine{
			OnInit: func(e sim.Env) { env = e },
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) {
				draw = env.Rand.Uint64()
				return nil, true
			},
			OnOutput: func() any { return draw },
		}
	}
	g := graph.Ring(15)
	seq, err := sim.Run(g, sim.Config{Randomized: true, Seed: 5, Engine: sim.EngineSequential}, factory)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := sim.Run(g, sim.Config{Randomized: true, Seed: 5, Engine: sim.EngineConcurrent}, factory)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Outputs, conc.Outputs) {
		t.Error("randomized outputs differ between engines")
	}
}

func TestDuplicateIDsRejected(t *testing.T) {
	g := graph.Path(3)
	_, err := sim.Run(g, sim.Config{IDs: ids.Assignment{1, 1, 2}}, newFloodMin(3))
	if err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestIDLengthMismatchRejected(t *testing.T) {
	g := graph.Path(3)
	_, err := sim.Run(g, sim.Config{IDs: ids.Assignment{1, 2}}, newFloodMin(3))
	if err == nil {
		t.Fatal("short ID table accepted")
	}
}

func TestInputLengthMismatchRejected(t *testing.T) {
	g := graph.Path(3)
	_, err := sim.Run(g, sim.Config{Inputs: []any{1}}, newFloodMin(3))
	if err == nil {
		t.Fatal("short input table accepted")
	}
}

func TestMaxRoundsEnforced(t *testing.T) {
	g := graph.Path(4)
	never := func() sim.Machine {
		return &sim.FuncMachine{
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) {
				return nil, false // never halts
			},
		}
	}
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		_, err := sim.Run(g, sim.Config{MaxRounds: 7, Engine: engine}, never)
		if !errors.Is(err, sim.ErrMaxRounds) {
			t.Errorf("engine %v: error = %v, want ErrMaxRounds", engine, err)
		}
	}
}

func TestHaltedNodeStopsSending(t *testing.T) {
	// Node halts at round 1 sending a token; its neighbor must receive the
	// token at round 2 and then silence (nil) at round 3.
	g := graph.Path(2)
	type record struct {
		gotRound2 sim.Message
		gotRound3 sim.Message
	}
	factory := func() sim.Machine {
		var env sim.Env
		rec := &record{}
		return &sim.FuncMachine{
			OnInit: func(e sim.Env) { env = e },
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) {
				if env.ID == 1 {
					// Halts immediately, final message still delivered.
					return sim.Broadcast(env.Degree, "token"), true
				}
				switch round {
				case 2:
					rec.gotRound2 = recv[0]
				case 3:
					rec.gotRound3 = recv[0]
					return nil, true
				}
				return nil, false
			},
			OnOutput: func() any { return rec },
		}
	}
	res, err := sim.Run(g, sim.Config{IDs: ids.Assignment{1, 2}}, factory)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Outputs[1].(*record)
	if rec.gotRound2 != "token" {
		t.Errorf("round 2 message = %v, want token", rec.gotRound2)
	}
	if rec.gotRound3 != nil {
		t.Errorf("round 3 message = %v, want nil (halted sender)", rec.gotRound3)
	}
	if res.HaltRound[0] != 0 {
		t.Errorf("HaltRound[0] = %d, want 0 (halted at first step)", res.HaltRound[0])
	}
}

func TestRoundsIsMaxHaltRound(t *testing.T) {
	g := graph.Path(5)
	factory := func() sim.Machine {
		var env sim.Env
		return &sim.FuncMachine{
			OnInit: func(e sim.Env) { env = e },
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) {
				return nil, round >= int(env.ID) // node with ID k halts at round k
			},
		}
	}
	res, err := sim.Run(g, sim.Config{IDs: ids.Assignment{1, 2, 3, 4, 5}}, factory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Errorf("Rounds = %d, want 4 (last halt at step 5)", res.Rounds)
	}
	for v, hr := range res.HaltRound {
		if hr != v {
			t.Errorf("HaltRound[%d] = %d, want %d", v, hr, v)
		}
	}
}

func TestMessageToCorrectPort(t *testing.T) {
	// Star: center must see each leaf's ID on the correct port.
	g := graph.Star(4)
	factory := func() sim.Machine {
		var env sim.Env
		var seen []sim.Message
		return &sim.FuncMachine{
			OnInit: func(e sim.Env) { env = e },
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) {
				if round == 1 {
					return sim.Broadcast(env.Degree, env.ID), false
				}
				seen = append([]sim.Message(nil), recv...)
				return nil, true
			},
			OnOutput: func() any { return seen },
		}
	}
	assignment := ids.Assignment{10, 21, 22, 23}
	res, err := sim.Run(g, sim.Config{IDs: assignment}, factory)
	if err != nil {
		t.Fatal(err)
	}
	centerSeen := res.Outputs[0].([]sim.Message)
	for p, msg := range centerSeen {
		to, _ := g.NeighborPort(0, p)
		if msg.(uint64) != assignment[to] {
			t.Errorf("port %d saw %v, want %d", p, msg, assignment[to])
		}
	}
}

func TestOversendStructuredError(t *testing.T) {
	g := graph.Path(2)
	bad := func() sim.Machine {
		return &sim.FuncMachine{
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) {
				return make([]sim.Message, 5), true // degree is 1
			},
		}
	}
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		_, err := sim.Run(g, sim.Config{Engine: engine}, bad)
		if !errors.Is(err, sim.ErrOverSend) {
			t.Fatalf("engine %v: error = %v, want ErrOverSend", engine, err)
		}
		var ne *sim.NodeError
		if !errors.As(err, &ne) {
			t.Fatalf("engine %v: error %v is not a *NodeError", engine, err)
		}
		if ne.Node != 0 || ne.Round != 1 {
			t.Errorf("engine %v: fault at node %d round %d, want node 0 round 1", engine, ne.Node, ne.Round)
		}
	}
}

func TestSingleVertexGraph(t *testing.T) {
	g := graph.Path(1)
	res, err := sim.Run(g, sim.Config{IDs: ids.Assignment{1}}, newFloodMin(1))
	if err != nil {
		t.Fatal(err)
	}
	// A single vertex needs no communication: a 0-round algorithm.
	if res.Outputs[0].(uint64) != 1 || res.Rounds != 0 {
		t.Errorf("single vertex run wrong: %+v", res)
	}
}

func TestIntOutputs(t *testing.T) {
	res := &sim.Result{Outputs: []any{1, 2, 3}}
	got := sim.IntOutputs(res)
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("IntOutputs = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("IntOutputs on mixed types did not panic")
		}
	}()
	sim.IntOutputs(&sim.Result{Outputs: []any{1, "x"}})
}
