package sim

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// Sentinel errors for the kernel's structured failure modes; every one is
// wrapped with run context, so test with errors.Is (and errors.As against
// *NodeError for the node/round detail).
var (
	// ErrNodePanic reports a Machine that panicked in Init, Step or Output.
	// The process never crashes: the panic is recovered, the run aborts, and
	// the error carries the node, round, panic value and stack.
	ErrNodePanic = errors.New("sim: machine panicked")
	// ErrOverSend reports a Machine that returned a send slice longer than
	// its degree. The send is clamped to the degree, the node is halted, and
	// the run aborts with this error — identically on both engines.
	ErrOverSend = errors.New("sim: machine sent on more ports than its degree")
	// ErrDeadline reports a run that exceeded Config.Deadline wall-clock
	// time (the watchdog that reaps deadlocked or runaway concurrent runs).
	ErrDeadline = errors.New("sim: run exceeded wall-clock deadline")
)

// NodeError is the structured report of a misbehaving Machine. It satisfies
// errors.Is against ErrNodePanic or ErrOverSend depending on the fault.
type NodeError struct {
	// Node is the vertex whose machine misbehaved.
	Node int
	// Round is the step the machine was executing: 0 for Init, the step
	// number for Step, -1 for Output (after the run completed).
	Round int
	// Value is the recovered panic value (nil for over-send faults).
	Value any
	// Stack is the goroutine stack captured at the recovery point (nil for
	// over-send faults).
	Stack []byte
	kind  error
}

func (e *NodeError) Error() string {
	var phase string
	switch {
	case e.Round == 0:
		phase = "during Init"
	case e.Round < 0:
		phase = "during Output"
	default:
		phase = fmt.Sprintf("at round %d", e.Round)
	}
	if e.Value != nil {
		return fmt.Sprintf("%v: node %d %s: %v", e.kind, e.Node, phase, e.Value)
	}
	return fmt.Sprintf("%v: node %d %s", e.kind, e.Node, phase)
}

// Unwrap exposes the sentinel (ErrNodePanic or ErrOverSend) to errors.Is.
func (e *NodeError) Unwrap() error { return e.kind }

// before orders node errors by (round, node), with Init (round 0) first and
// Output (round -1, only ever compared against other Output faults) last;
// both engines use it so they report the same fault for the same run.
func (e *NodeError) before(o *NodeError) bool {
	if o == nil {
		return true
	}
	if e.Round != o.Round {
		return e.Round < o.Round
	}
	return e.Node < o.Node
}

// overSendError builds the structured over-degree-send fault.
func overSendError(node, round, sent, degree int) *NodeError {
	return &NodeError{
		Node:  node,
		Round: round,
		Value: fmt.Sprintf("sent on %d ports but has degree %d", sent, degree),
		kind:  ErrOverSend,
	}
}

// initGuarded runs m.Init, converting a panic into a structured fault.
func initGuarded(m Machine, node int, env Env) (ne *NodeError) {
	defer func() {
		if r := recover(); r != nil {
			ne = &NodeError{Node: node, Round: 0, Value: r, Stack: debug.Stack(), kind: ErrNodePanic}
		}
	}()
	m.Init(env)
	return nil
}

// stepGuarded runs m.Step, converting a panic into a structured fault (the
// node is then treated as halted with nothing sent).
func stepGuarded(m Machine, node, round int, recv []Message) (send []Message, done bool, ne *NodeError) {
	defer func() {
		if r := recover(); r != nil {
			send, done = nil, true
			ne = &NodeError{Node: node, Round: round, Value: r, Stack: debug.Stack(), kind: ErrNodePanic}
		}
	}()
	send, done = m.Step(round, recv)
	return send, done, nil
}

// outputGuarded runs m.Output, converting a panic into a structured fault.
func outputGuarded(m Machine, node int) (out any, ne *NodeError) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			ne = &NodeError{Node: node, Round: -1, Value: r, Stack: debug.Stack(), kind: ErrNodePanic}
		}
	}()
	return m.Output(), nil
}
