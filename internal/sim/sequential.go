package sim

import "fmt"

// runSequential executes all nodes in index order within one goroutine,
// double-buffering the per-port inboxes. It is the deterministic fast path
// used by benchmarks.
func runSequential(g Topology, cfg Config, f Factory) (*Result, error) {
	n := g.N()
	maxDeg := topologyMaxDegree(g)

	machines := make([]Machine, n)
	inboxCur := make([][]Message, n)
	inboxNext := make([][]Message, n)
	done := make([]bool, n)
	haltRound := make([]int, n)
	for v := 0; v < n; v++ {
		machines[v] = f()
		machines[v].Init(makeEnv(g, cfg, maxDeg, v))
		inboxCur[v] = make([]Message, g.Degree(v))
		inboxNext[v] = make([]Message, g.Degree(v))
	}

	res := &Result{HaltRound: haltRound}
	live := n
	for step := 1; live > 0; step++ {
		if step > cfg.MaxRounds+1 {
			return nil, fmt.Errorf("%w: budget %d, %d nodes still live", ErrMaxRounds, cfg.MaxRounds, live)
		}
		res.Rounds = step - 1
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			send, nodeDone := machines[v].Step(step, inboxCur[v])
			if len(send) > g.Degree(v) {
				panic(fmt.Sprintf("sim: node %d sent on %d ports but has degree %d", v, len(send), g.Degree(v)))
			}
			for p := 0; p < len(send); p++ {
				if send[p] == nil {
					continue
				}
				u, rev := g.NeighborPort(v, p)
				inboxNext[u][rev] = send[p]
				res.MessagesSent++
			}
			if nodeDone {
				done[v] = true
				haltRound[v] = step - 1
				live--
			}
		}
		// Swap buffers; clear the new next.
		inboxCur, inboxNext = inboxNext, inboxCur
		for v := 0; v < n; v++ {
			clearMessages(inboxNext[v])
		}
	}

	res.Outputs = make([]any, n)
	for v := 0; v < n; v++ {
		res.Outputs[v] = machines[v].Output()
	}
	return res, nil
}

func clearMessages(ms []Message) {
	for i := range ms {
		ms[i] = nil
	}
}
