package sim

import (
	"context"
	"fmt"
	"time"
)

// runSequential executes all nodes in index order within one goroutine,
// double-buffering the per-port inboxes. It is the deterministic fast path
// used by benchmarks.
//
// Misbehaving machines never crash the process: panics and over-degree
// sends surface as *NodeError. Because the sweep visits nodes in index
// order, the first fault encountered is the (round, node)-minimal one —
// the same fault the concurrent engine reports for the same run.
func runSequential(ctx context.Context, g Topology, cfg Config, f Factory) (*Result, error) {
	n := g.N()
	maxDeg := topologyMaxDegree(g)
	var deadline time.Time
	if cfg.Deadline > 0 {
		deadline = time.Now().Add(cfg.Deadline)
	}

	// The working buffers come from the caller's arena when one is set;
	// haltRound is always fresh because the Result keeps it.
	machines, inboxCur, inboxNext, done := cfg.Arena.sequential(g)
	haltRound := make([]int, n)
	for v := 0; v < n; v++ {
		machines[v] = f()
		if ne := initGuarded(machines[v], v, makeEnv(g, cfg, maxDeg, v)); ne != nil {
			return nil, ne
		}
	}

	res := &Result{HaltRound: haltRound}
	live := n
	stats := cfg.OnRoundStats != nil
	for step := 1; live > 0; step++ {
		if ctx.Err() != nil {
			return nil, cancelErr(ctx, step-1)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, deadlineErr(cfg.Deadline, step-1)
		}
		if step > cfg.MaxRounds+1 {
			return nil, fmt.Errorf("%w: budget %d, %d nodes still live", ErrMaxRounds, cfg.MaxRounds, live)
		}
		res.Rounds = step - 1
		active := live
		var roundMsgs, roundBytes int64
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			send, nodeDone, ne := stepGuarded(machines[v], v, step, inboxCur[v])
			if ne != nil {
				return nil, ne
			}
			deg := g.Degree(v)
			if len(send) > deg {
				return nil, overSendError(v, step, len(send), deg)
			}
			for p := 0; p < len(send); p++ {
				if send[p] == nil {
					continue
				}
				u, rev := g.NeighborPort(v, p)
				inboxNext[u][rev] = send[p]
				res.MessagesSent++
				if stats {
					roundMsgs++
					roundBytes += MessageBytes(send[p])
				}
			}
			if nodeDone {
				done[v] = true
				haltRound[v] = step - 1
				live--
			}
		}
		// Swap buffers; clear the new next.
		inboxCur, inboxNext = inboxNext, inboxCur
		for v := 0; v < n; v++ {
			clearMessages(inboxNext[v])
		}
		// Progress hooks: the step completed for every node (faulted steps
		// return above, matching the concurrent engine's fault-free-only
		// notification).
		if cfg.OnRound != nil {
			cfg.OnRound(step)
		}
		if stats {
			cfg.OnRoundStats(RoundStats{Round: step, Messages: roundMsgs,
				Bytes: roundBytes, Active: active, Halted: n - live})
		}
	}

	res.Outputs = make([]any, n)
	for v := 0; v < n; v++ {
		out, ne := outputGuarded(machines[v], v)
		if ne != nil {
			return nil, ne
		}
		res.Outputs[v] = out
	}
	return res, nil
}

func clearMessages(ms []Message) {
	for i := range ms {
		ms[i] = nil
	}
}
