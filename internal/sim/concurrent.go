package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// runConcurrent executes one goroutine per node. Every directed edge is a
// buffered channel of capacity one; a round is: all nodes send on their
// out-channels, then all nodes receive on their in-channels. The capacity-1
// buffering makes the send phase non-blocking, so the round cannot deadlock.
//
// Nodes that have halted keep participating in the message rhythm (sending
// nils) until the whole run stops, which keeps every goroutine in lockstep
// without per-node liveness negotiation. A coordinator drives rounds via
// per-node start channels and collects per-round status.
func runConcurrent(g Topology, cfg Config, f Factory) (*Result, error) {
	n := g.N()
	maxDeg := topologyMaxDegree(g)

	// out[v][p] is the channel carrying v's port-p messages; the neighbor u
	// with reverse port q receives on out[v][p] == in[u][q].
	out := make([][]chan Message, n)
	in := make([][]chan Message, n)
	for v := 0; v < n; v++ {
		out[v] = make([]chan Message, g.Degree(v))
		in[v] = make([]chan Message, g.Degree(v))
		for p := range out[v] {
			out[v][p] = make(chan Message, 1)
		}
	}
	for v := 0; v < n; v++ {
		for p := range out[v] {
			u, rev := g.NeighborPort(v, p)
			in[u][rev] = out[v][p]
		}
	}

	type status struct {
		node     int
		justDone bool
		panicked any
	}
	start := make([]chan bool, n) // true = run a round, false = stop
	statusCh := make(chan status, n)
	var msgCount atomic.Int64

	var wg sync.WaitGroup
	outputs := make([]any, n)
	haltRound := make([]int, n)

	for v := 0; v < n; v++ {
		start[v] = make(chan bool, 1)
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			m := f()
			m.Init(makeEnv(g, cfg, maxDeg, v))
			deg := g.Degree(v)
			recv := make([]Message, deg)
			done := false
			round := 0
			for cont := range start[v] {
				if !cont {
					break
				}
				round++
				st := status{node: v}
				var send []Message
				if !done {
					func() {
						defer func() {
							if r := recover(); r != nil {
								st.panicked = r
								done = true
							}
						}()
						send, done = m.Step(round, recv)
						if done {
							st.justDone = true
						}
					}()
					if len(send) > deg {
						st.panicked = fmt.Sprintf("sim: node %d sent on %d ports but has degree %d", v, len(send), deg)
					}
				}
				// Send phase: one message (possibly nil) per port, always,
				// so receivers never block waiting for a halted node.
				for p := 0; p < deg; p++ {
					var msg Message
					if p < len(send) {
						msg = send[p]
					}
					if msg != nil {
						msgCount.Add(1)
					}
					out[v][p] <- msg
				}
				// Receive phase.
				for p := 0; p < deg; p++ {
					recv[p] = <-in[v][p]
				}
				statusCh <- st
			}
			outputs[v] = m.Output()
		}(v)
	}

	stopAll := func() {
		for v := 0; v < n; v++ {
			start[v] <- false
		}
		wg.Wait()
	}

	res := &Result{HaltRound: haltRound}
	live := n
	for step := 1; live > 0; step++ {
		if step > cfg.MaxRounds+1 {
			stopAll()
			return nil, fmt.Errorf("%w: budget %d, %d nodes still live", ErrMaxRounds, cfg.MaxRounds, live)
		}
		res.Rounds = step - 1
		for v := 0; v < n; v++ {
			start[v] <- true
		}
		for i := 0; i < n; i++ {
			st := <-statusCh
			if st.panicked != nil {
				stopAll()
				panic(st.panicked)
			}
			if st.justDone {
				haltRound[st.node] = step - 1
				live--
			}
		}
	}
	stopAll()

	res.Outputs = outputs
	res.MessagesSent = msgCount.Load()
	return res, nil
}
