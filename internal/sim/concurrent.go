package sim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// abortGrace bounds how long an aborting run waits for node goroutines to
// drain after the abort channel closes. Cooperative machines (ones that
// return from Step) exit within microseconds; only a machine blocked
// forever inside Step can exhaust it, and Go offers no way to kill such a
// goroutine — the run then returns anyway, reporting the leak.
const abortGrace = 2 * time.Second

// runConcurrent executes one goroutine per node. Every directed edge is a
// buffered channel of capacity one; a round is: all nodes send on their
// out-channels, then all nodes receive on their in-channels. The capacity-1
// buffering makes the send phase non-blocking, so the round cannot deadlock.
//
// Nodes that have halted keep participating in the message rhythm (sending
// nils) until the whole run stops, which keeps every goroutine in lockstep
// without per-node liveness negotiation. A coordinator drives rounds via
// per-node start channels and collects per-round status.
//
// Failure discipline: machine panics and over-degree sends are captured as
// *NodeError statuses; the coordinator finishes the round, picks the
// (round, node)-minimal fault (matching the sequential engine's sweep
// order) and shuts the run down gracefully. Cancellation and the
// Config.Deadline watchdog abort via a dedicated channel that every
// blocking operation in the node loop selects on, so all goroutines are
// reaped even mid-round.
func runConcurrent(ctx context.Context, g Topology, cfg Config, f Factory) (*Result, error) {
	n := g.N()
	maxDeg := topologyMaxDegree(g)

	// out[v][p] is the channel carrying v's port-p messages; the neighbor u
	// with reverse port q receives on out[v][p] == in[u][q]. The header
	// slices and receive buffers come from the caller's arena when one is
	// set; the channels themselves are always fresh (see Arena.concurrent).
	recvs, out, in := cfg.Arena.concurrent(g)
	for v := 0; v < n; v++ {
		for p := range out[v] {
			out[v][p] = make(chan Message, 1)
		}
	}
	for v := 0; v < n; v++ {
		for p := range out[v] {
			u, rev := g.NeighborPort(v, p)
			in[u][rev] = out[v][p]
		}
	}

	type status struct {
		node     int
		justDone bool
		fault    *NodeError
		// msgs/bytes carry the node's per-round telemetry when
		// Config.OnRoundStats is set; the coordinator aggregates them so
		// the hook observes the same totals the sequential engine reports.
		msgs  int64
		bytes int64
	}
	stats := cfg.OnRoundStats != nil
	start := make([]chan bool, n) // true = run a round, false = stop
	statusCh := make(chan status, n)
	abort := make(chan struct{})
	var msgCount atomic.Int64

	var wg sync.WaitGroup
	outputs := make([]any, n)
	outFaults := make([]*NodeError, n)
	haltRound := make([]int, n)

	for v := 0; v < n; v++ {
		start[v] = make(chan bool, 1)
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			m := f()
			initFault := initGuarded(m, v, makeEnv(g, cfg, maxDeg, v))
			deg := g.Degree(v)
			recv := recvs[v]
			done := initFault != nil
			round := 0
			for {
				var cont bool
				select {
				case cont = <-start[v]:
				case <-abort:
					return
				}
				if !cont {
					break
				}
				round++
				st := status{node: v}
				if initFault != nil {
					st.fault = initFault
					initFault = nil
				}
				var send []Message
				if !done {
					var ne *NodeError
					send, done, ne = stepGuarded(m, v, round, recv)
					switch {
					case ne != nil:
						st.fault = ne
					case len(send) > deg:
						st.fault = overSendError(v, round, len(send), deg)
						send = send[:deg]
						done = true
					case done:
						st.justDone = true
					}
				}
				// Send phase: one message (possibly nil) per port, always,
				// so receivers never block waiting for a halted node.
				for p := 0; p < deg; p++ {
					var msg Message
					if p < len(send) {
						msg = send[p]
					}
					if msg != nil {
						msgCount.Add(1)
						if stats {
							st.msgs++
							st.bytes += MessageBytes(msg)
						}
					}
					select {
					case out[v][p] <- msg:
					case <-abort:
						return
					}
				}
				// Receive phase.
				for p := 0; p < deg; p++ {
					select {
					case recv[p] = <-in[v][p]:
					case <-abort:
						return
					}
				}
				select {
				case statusCh <- st:
				case <-abort:
					return
				}
			}
			outputs[v], outFaults[v] = outputGuarded(m, v)
		}(v)
	}

	// stopAll drains the run gracefully: every node has finished its round
	// and is (or will be) waiting on its start channel, so the false token
	// lets it collect its output and exit.
	stopAll := func() {
		for v := 0; v < n; v++ {
			start[v] <- false
		}
		wg.Wait()
	}

	// abortAll tears the run down mid-round: the abort channel wakes nodes
	// blocked anywhere in the round protocol. Outputs are not collected.
	abortAll := func(cause error) error {
		close(abort)
		drained := make(chan struct{})
		go func() {
			wg.Wait()
			close(drained)
		}()
		select {
		case <-drained:
			return cause
		case <-time.After(abortGrace):
			return fmt.Errorf("%w (node goroutines still blocked inside Step after %v; they cannot be reaped)", cause, abortGrace)
		}
	}

	var watchdog <-chan time.Time
	if cfg.Deadline > 0 {
		timer := time.NewTimer(cfg.Deadline)
		defer timer.Stop()
		watchdog = timer.C
	}
	ctxDone := ctx.Done()
	collect := func(round int) (status, error) {
		if ctxDone == nil && watchdog == nil {
			return <-statusCh, nil
		}
		select {
		case st := <-statusCh:
			return st, nil
		case <-ctxDone:
			return status{}, cancelErr(ctx, round)
		case <-watchdog:
			return status{}, deadlineErr(cfg.Deadline, round)
		}
	}

	res := &Result{HaltRound: haltRound}
	live := n
	for step := 1; live > 0; step++ {
		if ctx.Err() != nil {
			return nil, abortAll(cancelErr(ctx, step-1))
		}
		if step > cfg.MaxRounds+1 {
			stopAll()
			return nil, fmt.Errorf("%w: budget %d, %d nodes still live", ErrMaxRounds, cfg.MaxRounds, live)
		}
		res.Rounds = step - 1
		active := live
		for v := 0; v < n; v++ {
			start[v] <- true
		}
		var fault *NodeError
		var roundMsgs, roundBytes int64
		for i := 0; i < n; i++ {
			st, err := collect(step - 1)
			if err != nil {
				return nil, abortAll(err)
			}
			if st.fault != nil && st.fault.before(fault) {
				fault = st.fault
			}
			roundMsgs += st.msgs
			roundBytes += st.bytes
			if st.justDone {
				haltRound[st.node] = step - 1
				live--
			}
		}
		if fault != nil {
			stopAll()
			return nil, fault
		}
		// Progress hooks: every node's status for this step is in, and no
		// node faulted (mirrors the sequential engine, which aborts its
		// sweep mid-step on a fault and so never notifies for that step).
		if cfg.OnRound != nil {
			cfg.OnRound(step)
		}
		if stats {
			cfg.OnRoundStats(RoundStats{Round: step, Messages: roundMsgs,
				Bytes: roundBytes, Active: active, Halted: n - live})
		}
	}
	stopAll()

	var fault *NodeError
	for v := 0; v < n; v++ {
		if outFaults[v] != nil {
			fault = outFaults[v]
			break
		}
	}
	if fault != nil {
		return nil, fault
	}
	res.Outputs = outputs
	res.MessagesSent = msgCount.Load()
	return res, nil
}
