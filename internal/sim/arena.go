package sim

// Arena is caller-owned scratch memory for the simulator kernel. A harness
// that runs many simulations back to back (a sweep row's trial loop, a
// benchmark) passes the same *Arena in Config.Arena and the kernel reuses
// the per-run machine table and inbox buffers instead of reallocating them,
// dropping the steady-state allocation cost of a run to the per-run Result
// (and whatever the machines themselves allocate).
//
// Safety rules, enforced by construction:
//
//   - A Result never aliases arena memory: Outputs and HaltRound are freshly
//     allocated every run, so results stay valid after the arena is reused.
//   - Buffers are cleared when acquired, not when released, so a run never
//     observes a previous run's messages — and an abandoned run (error,
//     cancellation) poisons nothing.
//   - An Arena may be reused across topologies of any size (buffers grow
//     monotonically), but must not be shared by concurrent Runs: it is
//     deliberately unsynchronized scratch. nil is always valid and means
//     "allocate fresh" (the historical behavior).
type Arena struct {
	machines []Machine
	inboxes  [][]Message
	msgs     []Message
	done     []bool
	chans    [][]chan Message
	chanFlat []chan Message
}

// grow returns buf resliced to length n, reallocating only when the backing
// array is too small. The contents are unspecified; callers clear what they
// need.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// sequential acquires the runSequential working set for g: the machine
// table, the two port-indexed inbox buffers (carved out of one flat message
// backing), and the halted flags — all cleared. A nil arena degrades to
// plain allocation.
func (a *Arena) sequential(g Topology) (machines []Machine, cur, next [][]Message, done []bool) {
	n := g.N()
	sumDeg := 0
	for v := 0; v < n; v++ {
		sumDeg += g.Degree(v)
	}
	if a == nil {
		a = &Arena{}
	}
	a.machines = grow(a.machines, n)
	clear(a.machines[:cap(a.machines)]) // drop machine refs beyond n too
	a.msgs = grow(a.msgs, 2*sumDeg)
	clear(a.msgs)
	a.done = grow(a.done, n)
	clear(a.done)
	a.inboxes = grow(a.inboxes, 2*n)
	cur, next = a.inboxes[:n], a.inboxes[n:]
	off := 0
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		cur[v] = a.msgs[off : off+deg : off+deg]
		next[v] = a.msgs[off+sumDeg : off+sumDeg+deg : off+sumDeg+deg]
		off += deg
	}
	return a.machines, cur, next, a.done
}

// concurrent acquires runConcurrent's coordinator-side working set: the
// per-node receive buffers (carved from the same flat message backing the
// sequential engine uses) and the out/in channel headers. The channels
// themselves are always created fresh — a reused channel could carry a
// buffered message out of an aborted run — so the arena trims the header
// and buffer allocations, which dominate for the small graphs the
// engine-equivalence sweeps run on.
func (a *Arena) concurrent(g Topology) (recv [][]Message, out, in [][]chan Message) {
	n := g.N()
	sumDeg := 0
	for v := 0; v < n; v++ {
		sumDeg += g.Degree(v)
	}
	if a == nil {
		a = &Arena{}
	}
	a.msgs = grow(a.msgs, sumDeg)
	clear(a.msgs)
	a.inboxes = grow(a.inboxes, n)
	recv = a.inboxes[:n]
	a.chans = grow(a.chans, 2*n)
	out, in = a.chans[:n], a.chans[n:]
	a.chanFlat = grow(a.chanFlat, 2*sumDeg)
	clear(a.chanFlat) // stale channels from a larger prior run must not linger
	off := 0
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		recv[v] = a.msgs[off : off+deg : off+deg]
		out[v] = a.chanFlat[off : off+deg : off+deg]
		in[v] = a.chanFlat[off+sumDeg : off+sumDeg+deg : off+sumDeg+deg]
		off += deg
	}
	return recv, out, in
}
