package sim_test

import (
	"testing"

	"locality/internal/graph"
	"locality/internal/sim"
)

// ringBench is an allocation-free benchmark machine: every step it forwards a
// pre-boxed token on every port, halting after a fixed number of steps. The
// send slice is built once in Init and reused, so steady-state rounds do no
// allocation at all — any allocs/round measured over it belong to the kernel.
type ringBench struct {
	send []sim.Message
	stop int
}

// ringToken is boxed once so Step never converts an int to an interface.
var ringToken sim.Message = "tok"

func (m *ringBench) Init(env sim.Env) {
	m.send = make([]sim.Message, env.Degree)
	for i := range m.send {
		m.send[i] = ringToken
	}
}

func (m *ringBench) Step(round int, recv []sim.Message) ([]sim.Message, bool) {
	return m.send, round >= m.stop
}

func (m *ringBench) Output() any { return nil }

func ringFactory(stop int) sim.Factory {
	return func() sim.Machine { return &ringBench{stop: stop} }
}

func ringRun(b testing.TB, g sim.Topology, arena *sim.Arena, rounds int) {
	res, err := sim.Run(g, sim.Config{Arena: arena, MaxRounds: rounds + 8}, ringFactory(rounds))
	if err != nil {
		b.Fatalf("ring run: %v", err)
	}
	if res.Rounds != rounds-1 {
		b.Fatalf("ring run: %d rounds, want %d", res.Rounds, rounds-1)
	}
}

// TestSequentialZeroAllocsPerRound is the hot-path acceptance criterion:
// with an arena, runSequential allocates nothing per round in steady state.
// Measured differentially — the per-run cost (machines, Result, HaltRound)
// is identical for a 64-round and a 1064-round run, so any per-round
// allocation would show up 1000-fold in the difference.
func TestSequentialZeroAllocsPerRound(t *testing.T) {
	g := graph.Ring(64)
	arena := &sim.Arena{}
	ringRun(t, g, arena, 8) // prime the arena so growth is not measured

	allocs := func(rounds int) float64 {
		return testing.AllocsPerRun(5, func() { ringRun(t, g, arena, rounds) })
	}
	short, long := allocs(64), allocs(1064)
	perRound := (long - short) / 1000
	if perRound > 0.01 {
		t.Errorf("sequential engine allocates %.3f allocs/round in steady state (short run %.0f, long run %.0f), want 0",
			perRound, short, long)
	}
}

// TestArenaReuseMatchesFresh pins the arena's correctness contract: reusing
// one arena across runs — including across engines and across graph sizes —
// changes no observable result.
func TestArenaReuseMatchesFresh(t *testing.T) {
	arena := &sim.Arena{}
	for _, n := range []int{16, 48, 8} { // shrinking size exercises stale-buffer clearing
		g := graph.Ring(n)
		for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
			fresh, err := sim.Run(g, sim.Config{Engine: engine, MaxRounds: 64}, ringFactory(16))
			if err != nil {
				t.Fatalf("n=%d engine=%d fresh: %v", n, engine, err)
			}
			reused, err := sim.Run(g, sim.Config{Engine: engine, MaxRounds: 64, Arena: arena}, ringFactory(16))
			if err != nil {
				t.Fatalf("n=%d engine=%d arena: %v", n, engine, err)
			}
			if fresh.Rounds != reused.Rounds || fresh.MessagesSent != reused.MessagesSent {
				t.Errorf("n=%d engine=%d: arena run (rounds=%d, msgs=%d) differs from fresh (rounds=%d, msgs=%d)",
					n, engine, reused.Rounds, reused.MessagesSent, fresh.Rounds, fresh.MessagesSent)
			}
		}
	}
}

// BenchmarkSequentialRing reports the kernel's per-run cost with and without
// buffer reuse; -benchmem makes the allocs/op delta visible, and
// cmd/localbench -bench-json records the trajectory.
func BenchmarkSequentialRing(b *testing.B) {
	g := graph.Ring(1024)
	b.Run("arena", func(b *testing.B) {
		arena := &sim.Arena{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ringRun(b, g, arena, 64)
		}
	})
	b.Run("noarena", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ringRun(b, g, nil, 64)
		}
	})
}

// BenchmarkConcurrentRing is the goroutine-per-node engine on the same
// workload (smaller ring: the channel protocol dominates).
func BenchmarkConcurrentRing(b *testing.B) {
	g := graph.Ring(128)
	b.Run("arena", func(b *testing.B) {
		arena := &sim.Arena{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(g, sim.Config{Engine: sim.EngineConcurrent, MaxRounds: 128, Arena: arena}, ringFactory(32))
			if err != nil || res.Rounds != 31 {
				b.Fatalf("run: rounds=%v err=%v", res, err)
			}
		}
	})
	b.Run("noarena", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(g, sim.Config{Engine: sim.EngineConcurrent, MaxRounds: 128}, ringFactory(32))
			if err != nil || res.Rounds != 31 {
				b.Fatalf("run: rounds=%v err=%v", res, err)
			}
		}
	})
}
