package sim

import "fmt"

// RunDet runs a DetLOCAL execution: unique IDs, no randomness.
func RunDet(g Topology, assignment []uint64, f Factory) (*Result, error) {
	return Run(g, Config{IDs: assignment}, f)
}

// RunRand runs a RandLOCAL execution: no IDs, private random streams.
func RunRand(g Topology, seed uint64, f Factory) (*Result, error) {
	return Run(g, Config{Randomized: true, Seed: seed}, f)
}

// IntOutputs converts a result's outputs to ints. It panics with the vertex
// index if any output has a different dynamic type, which in this library
// indicates a bug in the Machine, not bad input.
func IntOutputs(res *Result) []int {
	out := make([]int, len(res.Outputs))
	for v, o := range res.Outputs {
		x, ok := o.(int)
		if !ok {
			panic(fmt.Sprintf("sim: output of node %d is %T, want int", v, o))
		}
		out[v] = x
	}
	return out
}

// FuncMachine adapts closures to the Machine interface; it keeps tests and
// small experimental algorithms compact.
type FuncMachine struct {
	// OnInit may be nil.
	OnInit func(env Env)
	// OnStep must be non-nil.
	OnStep func(round int, recv []Message) ([]Message, bool)
	// OnOutput may be nil (output is then nil).
	OnOutput func() any
}

var _ Machine = (*FuncMachine)(nil)

// Init implements Machine.
func (m *FuncMachine) Init(env Env) {
	if m.OnInit != nil {
		m.OnInit(env)
	}
}

// Step implements Machine.
func (m *FuncMachine) Step(round int, recv []Message) ([]Message, bool) {
	return m.OnStep(round, recv)
}

// Output implements Machine.
func (m *FuncMachine) Output() any {
	if m.OnOutput != nil {
		return m.OnOutput()
	}
	return nil
}

// Broadcast fills a fresh send slice with the same message on every port.
func Broadcast(degree int, msg Message) []Message {
	send := make([]Message, degree)
	for p := range send {
		send[p] = msg
	}
	return send
}
