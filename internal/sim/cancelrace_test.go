package sim_test

// Cancellation-race suite: RunContext cancelled at seeded random rounds —
// synchronously from the round boundary and asynchronously from a racing
// goroutine — must always tear down goroutine-leak-free and always return a
// structured, errors.Is-classifiable cancellation or deadline error. Run
// with -race, these tests are the kernel's defense against cancellation
// paths that are only safe on the happy schedule.

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"locality/internal/graph"
	"locality/internal/rng"
	"locality/internal/sim"
)

// settleGoroutines waits for the goroutine count to fall back to the
// baseline (+2 slack for runtime helpers).
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestCancelAtSeededRoundsSync cancels from inside the OnRound hook — the
// earliest moment a round is known complete — at a seeded random round per
// trial, on both engines. Determinism of the schedule keeps failures
// reproducible by seed.
func TestCancelAtSeededRoundsSync(t *testing.T) {
	g := graph.RandomTree(48, 4, rng.New(31))
	r := rng.New(97)
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		for trial := 0; trial < 8; trial++ {
			target := 1 + int(r.Uint64()%25)
			ctx, cancel := context.WithCancel(context.Background())
			before := runtime.NumGoroutine()
			cfg := sim.Config{
				Engine:    engine,
				MaxRounds: 1 << 20,
				OnRound: func(round int) {
					if round == target {
						cancel()
					}
				},
			}
			_, err := sim.RunContext(ctx, g, cfg, func() sim.Machine { return neverHalt() })
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("engine %v trial %d (cancel at round %d): error = %v, want wrapped context.Canceled",
					engine, trial, target, err)
			}
			settleGoroutines(t, before)
		}
	}
}

// TestCancelAtSeededRoundsAsync races the cancel from another goroutine,
// triggered when the run crosses a seeded random round. The run may finish
// a few more rounds before noticing — the invariants are only that the
// error is structured and nothing leaks, every time.
func TestCancelAtSeededRoundsAsync(t *testing.T) {
	g := graph.RandomTree(48, 4, rng.New(31))
	r := rng.New(98)
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		for trial := 0; trial < 8; trial++ {
			target := 1 + int(r.Uint64()%25)
			ctx, cancel := context.WithCancel(context.Background())
			before := runtime.NumGoroutine()
			crossed := make(chan struct{})
			var once atomic.Bool
			go func() {
				<-crossed
				cancel()
			}()
			cfg := sim.Config{
				Engine:    engine,
				MaxRounds: 1 << 20,
				OnRound: func(round int) {
					if round >= target && once.CompareAndSwap(false, true) {
						close(crossed)
					}
				},
			}
			_, err := sim.RunContext(ctx, g, cfg, func() sim.Machine { return neverHalt() })
			if once.CompareAndSwap(false, true) {
				close(crossed) // run somehow ended early; unblock the canceller
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("engine %v trial %d (cancel after round %d): error = %v, want wrapped context.Canceled",
					engine, trial, target, err)
			}
			settleGoroutines(t, before)
			cancel()
		}
	}
}

// TestCancelDeadlineClassification: cancellation by deadline classifies as
// DeadlineExceeded (not bare Canceled), through the same wrapped error
// shape, on both engines.
func TestCancelDeadlineClassification(t *testing.T) {
	g := graph.Ring(16)
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		before := runtime.NumGoroutine()
		_, err := sim.RunContext(ctx, g, sim.Config{Engine: engine, MaxRounds: 1 << 30},
			func() sim.Machine { return neverHalt() })
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("engine %v: error = %v, want wrapped context.DeadlineExceeded", engine, err)
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("engine %v: deadline expiry also matches context.Canceled: %v", engine, err)
		}
		settleGoroutines(t, before)
	}
}

// TestOnRoundObservesEveryStep pins the OnRound contract both supervision
// and these tests rely on: called once per completed step, in order, with
// identical sequences on both engines, and a run's result is unchanged by
// observing it.
func TestOnRoundObservesEveryStep(t *testing.T) {
	g := graph.RandomTree(24, 3, rng.New(17))
	halting := func() sim.Machine {
		return &sim.FuncMachine{
			OnStep: func(round int, recv []sim.Message) ([]sim.Message, bool) {
				return nil, round >= 6
			},
		}
	}
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		var seen []int
		cfg := sim.Config{Engine: engine, MaxRounds: 64,
			OnRound: func(round int) { seen = append(seen, round) }}
		res, err := sim.Run(g, cfg, halting)
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		plain, err := sim.Run(g, sim.Config{Engine: engine, MaxRounds: 64}, halting)
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		if res.Rounds != plain.Rounds {
			t.Errorf("engine %v: OnRound changed the result: %d vs %d rounds", engine, res.Rounds, plain.Rounds)
		}
		if len(seen) == 0 {
			t.Fatalf("engine %v: OnRound never fired", engine)
		}
		for i, round := range seen {
			if round != i+1 {
				t.Fatalf("engine %v: OnRound sequence %v not 1..n", engine, seen)
			}
		}
		if seen[len(seen)-1] != res.Rounds+1 {
			t.Errorf("engine %v: last observed step %d, halting step should be Rounds+1 = %d",
				engine, seen[len(seen)-1], res.Rounds+1)
		}
	}
}
