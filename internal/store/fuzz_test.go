package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreRecord drives the crash-safety contract: write a record, cut the
// segment file at an arbitrary byte offset (a torn write), reopen, and
// require that recovery never panics and never serves a record that differs
// from what was written. Either the store misses (the tail was torn) or it
// returns the exact original.
func FuzzStoreRecord(f *testing.F) {
	f.Add("k", "output", 3, 0)
	f.Add("key-with-\x00-byte", "", 0, 4)
	f.Add("k2", "| table |\n| row |\n", 42, 1<<20)
	f.Fuzz(func(t *testing.T, key, output string, batches, cut int) {
		if key == "" {
			return // empty keys are not produced by IdentityKey
		}
		dir := t.TempDir()
		s, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		want := Result{Output: output, Batches: batches}
		s.Put(key, want)
		if got, ok := s.Get(key); !ok || got != want {
			t.Fatalf("pre-crash round trip failed: %+v, %v", got, ok)
		}
		s.Close()

		paths, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
		if err != nil || len(paths) == 0 {
			t.Fatalf("no segment files: %v", err)
		}
		info, err := os.Stat(paths[0])
		if err != nil {
			t.Fatalf("stat: %v", err)
		}
		// Normalize the fuzzed cut into [0, size]: cutting at size is the
		// clean case, anything less tears the record.
		size := info.Size()
		c := int64(cut)
		if c < 0 {
			c = -c
		}
		if size > 0 {
			c %= size + 1
		} else {
			c = 0
		}
		if err := os.Truncate(paths[0], c); err != nil {
			t.Fatalf("truncate: %v", err)
		}

		s2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open after torn write: %v", err)
		}
		defer s2.Close()
		if got, ok := s2.Get(key); ok && got != want {
			t.Fatalf("recovered store served corrupt record: got %+v, want %+v", got, want)
		}
		// The store must still accept writes after recovery.
		s2.Put(key, want)
		if got, ok := s2.Get(key); !ok || got != want {
			t.Fatalf("post-recovery write failed: %+v, %v", got, ok)
		}
	})
}

// FuzzDecodeRecord throws raw bytes at the frame decoder: it must never
// panic and must never claim to consume more bytes than it was given.
func FuzzDecodeRecord(f *testing.F) {
	if frame, err := encodeRecord(record{Key: "k", Output: "v", Batches: 1}); err == nil {
		f.Add(frame)
		f.Add(frame[:len(frame)-1])
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decodeRecord consumed %d of %d bytes", n, len(data))
		}
		// A successful decode must re-encode to a valid frame.
		if _, eerr := encodeRecord(rec); eerr != nil {
			t.Fatalf("decoded record does not re-encode: %v", eerr)
		}
		_ = fmt.Sprintf("%+v", rec)
	})
}
