// Package store is the persistent content-addressed result cache behind
// localityd's serving path: append-only segment files plus an in-memory
// index, keyed by jobs.Spec.IdentityKey (passed in as an opaque hex string,
// so this package depends on nothing above internal/obs).
//
// The whole system is deterministic by construction (localvet-enforced), so
// a sweep table is a pure function of its identity key — which is what makes
// serving a stored record in place of a fresh computation sound: the bytes
// could not have come out differently. The store's own obligations are
// therefore purely about integrity and bounds:
//
//   - Integrity: every record is CRC-framed, and Get re-verifies the frame
//     and the embedded key on every read. A corrupt record is dropped from
//     the index and reported as a miss — the caller recomputes; the store
//     never serves bytes it cannot vouch for.
//
//   - Crash safety: writes append to the active segment with no in-place
//     mutation. A torn tail record (the process died mid-append) is detected
//     by the frame scan on Open and truncated away; every record before it
//     survives.
//
//   - Bounded retention: segments are evicted oldest-first (FIFO) whenever
//     the byte budget is exceeded, mirroring the hashed-identity /
//     bounded-FIFO retention idiom used across the repo. The active segment
//     is never evicted.
//
//   - Versioning: the directory carries a VERSION file. A mismatch (schema
//     evolved, or a foreign directory) invalidates the cache wholesale —
//     segments are removed and the store starts empty — because records
//     written under another schema cannot be trusted to mean the same thing.
//
// Concurrency: a Store is safe for concurrent use; one mutex serializes the
// index and file operations (file I/O through package os is not a blocking
// operation under the mutexhold contract). The package never reads the
// clock except for the stored-at stamp leaf in leaves.go, which is operator
// telemetry and is never read back into results.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"locality/internal/obs"
)

// SchemaVersion is the on-disk layout version. Bump it when the record
// encoding (or the meaning of any encoded field, including the identity key
// schema upstream) changes: a store opened under a different version is
// invalidated wholesale rather than reinterpreted.
const SchemaVersion = "locality-store/v1"

const (
	versionFile = "VERSION"
	segPrefix   = "seg-"
	segSuffix   = ".log"

	// headerLen frames every record: 4-byte big-endian payload length,
	// 4-byte IEEE CRC32 of the payload.
	headerLen = 8
	// maxRecordBytes sanity-bounds the length prefix so a corrupt header
	// cannot demand an absurd allocation during recovery.
	maxRecordBytes = 64 << 20

	// DefaultMaxBytes is the byte budget when Options.MaxBytes is zero.
	DefaultMaxBytes = 256 << 20
	// DefaultSegmentBytes is the roll threshold when Options.SegmentBytes
	// is zero. Smaller segments evict in finer grain; larger ones amortize
	// file handles.
	DefaultSegmentBytes = 4 << 20
)

// Options configures a Store.
type Options struct {
	// Dir is the segment directory (required; created if missing).
	Dir string
	// MaxBytes bounds the total size of all segment files. When an append
	// pushes past it, whole segments are evicted oldest-first until the
	// store fits (the active segment is never evicted). <=0 selects
	// DefaultMaxBytes.
	MaxBytes int64
	// SegmentBytes is the active segment's roll threshold. <=0 selects
	// DefaultSegmentBytes.
	SegmentBytes int64
	// Metrics, when non-nil, receives locality_store_{hits,misses,
	// evictions,bytes}_total. Nil disables instrumentation at zero cost.
	Metrics *obs.Registry
}

func (o Options) maxBytes() int64 {
	if o.MaxBytes > 0 {
		return o.MaxBytes
	}
	return DefaultMaxBytes
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes > 0 {
		return o.SegmentBytes
	}
	return DefaultSegmentBytes
}

// Result is one cached sweep outcome: the rendered table and the batch
// count the snapshot replays (see jobs.Job).
type Result struct {
	Output  string `json:"output"`
	Batches int    `json:"batches"`
}

// record is the persisted payload. The key is embedded so a read can verify
// the index entry still points at the record it was built from, and the
// stored-at stamp is operator telemetry (never read back into results).
type record struct {
	Key             string `json:"key"`
	Output          string `json:"output"`
	Batches         int    `json:"batches"`
	StoredUnixNanos int64  `json:"stored_unix_nanos"`
}

// Frame-scan sentinels: truncated means the buffer ends mid-record (a torn
// tail — recovery truncates there); corrupt means the frame is internally
// inconsistent (bad CRC, absurd length, unparseable payload).
var (
	errTruncated = errors.New("store: truncated record")
	errCorrupt   = errors.New("store: corrupt record")
)

// encodeRecord frames one record: length, CRC, JSON payload.
func encodeRecord(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("store: record %d bytes exceeds bound %d", len(payload), maxRecordBytes)
	}
	frame := make([]byte, headerLen+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[headerLen:], payload)
	return frame, nil
}

// decodeRecord reads one framed record from the front of buf, returning the
// record and the number of bytes consumed. errTruncated distinguishes a
// clean-cut tail from errCorrupt's integrity failures.
func decodeRecord(buf []byte) (record, int, error) {
	if len(buf) < headerLen {
		return record{}, 0, errTruncated
	}
	n := int(binary.BigEndian.Uint32(buf[0:4]))
	if n == 0 || n > maxRecordBytes {
		return record{}, 0, errCorrupt
	}
	if len(buf) < headerLen+n {
		return record{}, 0, errTruncated
	}
	payload := buf[headerLen : headerLen+n]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(buf[4:8]) {
		return record{}, 0, errCorrupt
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return record{}, 0, errCorrupt
	}
	return rec, headerLen + n, nil
}

// entry locates one live record: which segment, at what offset, how many
// framed bytes.
type entry struct {
	seq uint64
	off int64
	n   int
}

// segment is one append-only log file. The last element of Store.segs is
// the active segment; earlier ones are sealed.
type segment struct {
	seq  uint64
	path string
	f    *os.File
	size int64
}

// Store is the cache. Create with Open, shut down with Close.
type Store struct {
	opts    Options
	metrics storeMetrics

	mu    sync.Mutex
	segs  []*segment // ascending seq; last is active
	index map[string]entry
	total int64 // sum of segment sizes on disk
}

type storeMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	bytes     *obs.Gauge
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	return storeMetrics{
		hits:      reg.Counter("locality_store_hits_total", "Result-store lookups answered from cache."),
		misses:    reg.Counter("locality_store_misses_total", "Result-store lookups finding no usable record."),
		evictions: reg.Counter("locality_store_evictions_total", "Cached records dropped by byte-budget segment eviction."),
		bytes:     reg.Gauge("locality_store_bytes_total", "Live bytes across the store's segment files."),
	}
}

// Open loads (or creates) the store under o.Dir: version check, segment
// scan with torn-tail recovery, index rebuild, and an eviction pass in case
// the budget shrank since the last run.
func Open(o Options) (*Store, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("store: dir required")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		opts:    o,
		metrics: newStoreMetrics(o.Metrics),
		index:   make(map[string]entry),
	}
	if err := s.checkVersion(); err != nil {
		return nil, err
	}
	if err := s.loadSegments(); err != nil {
		s.Close()
		return nil, err
	}
	if len(s.segs) == 0 {
		if err := s.addSegment(1); err != nil {
			return nil, err
		}
	}
	s.evictLocked()
	s.metrics.bytes.Set(s.total)
	return s, nil
}

// checkVersion enforces the on-disk schema: a missing VERSION is written, a
// mismatched one invalidates every segment (records under another schema
// cannot be trusted to mean the same thing).
func (s *Store) checkVersion() error {
	path := filepath.Join(s.opts.Dir, versionFile)
	data, err := os.ReadFile(path)
	switch {
	case err == nil && strings.TrimSpace(string(data)) == SchemaVersion:
		return nil
	case err == nil || os.IsNotExist(err):
		if err == nil { // mismatch: wipe the segments
			paths, _ := filepath.Glob(filepath.Join(s.opts.Dir, segPrefix+"*"+segSuffix))
			for _, p := range paths {
				os.Remove(p)
			}
		}
		if werr := os.WriteFile(path, []byte(SchemaVersion+"\n"), 0o644); werr != nil {
			return fmt.Errorf("store: writing version: %w", werr)
		}
		return nil
	default:
		return fmt.Errorf("store: reading version: %w", err)
	}
}

// loadSegments scans every segment in sequence order, indexing valid
// records (later writes of a key override earlier ones) and truncating each
// file at its first invalid frame — torn tails die here, on Open, so no
// later read can trip over them.
func (s *Store) loadSegments() error {
	paths, err := filepath.Glob(filepath.Join(s.opts.Dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sort.Strings(paths) // zero-padded names: lexical == numeric
	for _, path := range paths {
		base := filepath.Base(path)
		seq, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(base, segPrefix), segSuffix), 10, 64)
		if perr != nil {
			continue // not ours; leave it alone
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return fmt.Errorf("store: %w", rerr)
		}
		good := int64(0)
		for off := 0; off < len(data); {
			rec, n, derr := decodeRecord(data[off:])
			if derr != nil {
				break
			}
			s.index[rec.Key] = entry{seq: seq, off: int64(off), n: n}
			off += n
			good = int64(off)
		}
		if good < int64(len(data)) {
			if terr := os.Truncate(path, good); terr != nil {
				return fmt.Errorf("store: truncating torn tail: %w", terr)
			}
		}
		f, oerr := os.OpenFile(path, os.O_RDWR, 0o644)
		if oerr != nil {
			return fmt.Errorf("store: %w", oerr)
		}
		s.segs = append(s.segs, &segment{seq: seq, path: path, f: f, size: good})
		s.total += good
	}
	return nil
}

// addSegment creates and activates the segment with the given sequence
// number. Callers hold the mutex (or own the store exclusively, in Open).
func (s *Store) addSegment(seq uint64) error {
	path := filepath.Join(s.opts.Dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.segs = append(s.segs, &segment{seq: seq, path: path, f: f})
	return nil
}

// segByID resolves an index entry's segment; callers hold the mutex.
func (s *Store) segByID(seq uint64) *segment {
	for _, seg := range s.segs {
		if seg.seq == seq {
			return seg
		}
	}
	return nil
}

// Get returns the cached result for key. Every read re-verifies the frame
// (CRC and embedded key) — a record that fails verification is dropped from
// the index and reported as a miss, never served. Hit/miss accounting lives
// here so every consulting path (submit, coordinator) is counted.
func (s *Store) Get(key string) (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		s.metrics.misses.Inc()
		return Result{}, false
	}
	seg := s.segByID(e.seq)
	if seg == nil {
		delete(s.index, key)
		s.metrics.misses.Inc()
		return Result{}, false
	}
	buf := make([]byte, e.n)
	_, rerr := seg.f.ReadAt(buf, e.off)
	rec, _, derr := decodeRecord(buf)
	if rerr != nil || derr != nil || rec.Key != key {
		delete(s.index, key)
		s.metrics.misses.Inc()
		return Result{}, false
	}
	s.metrics.hits.Inc()
	return Result{Output: rec.Output, Batches: rec.Batches}, true
}

// Put stores the result under key, rolling the active segment at the
// threshold and evicting oldest segments past the byte budget. Failures are
// swallowed: caching is an optimization, and a job must never fail because
// its result could not be cached (same discipline as checkpoint
// persistence).
func (s *Store) Put(key string, res Result) {
	frame, err := encodeRecord(record{
		Key: key, Output: res.Output, Batches: res.Batches, StoredUnixNanos: nowNanos(),
	})
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.segs) == 0 {
		return // Close raced a Put; drop it
	}
	active := s.segs[len(s.segs)-1]
	if active.size > 0 && active.size+int64(len(frame)) > s.opts.segmentBytes() {
		if err := s.addSegment(active.seq + 1); err != nil {
			return
		}
		active = s.segs[len(s.segs)-1]
	}
	if _, err := active.f.WriteAt(frame, active.size); err != nil {
		return
	}
	s.index[key] = entry{seq: active.seq, off: active.size, n: len(frame)}
	active.size += int64(len(frame))
	s.total += int64(len(frame))
	s.evictLocked()
	s.metrics.bytes.Set(s.total)
}

// evictLocked drops whole segments oldest-first until the store fits its
// byte budget. The active segment is never evicted — a budget smaller than
// one record still serves the record it just wrote.
func (s *Store) evictLocked() {
	for s.total > s.opts.maxBytes() && len(s.segs) > 1 {
		victim := s.segs[0]
		s.segs = s.segs[1:]
		evicted := int64(0)
		for k, e := range s.index {
			if e.seq == victim.seq {
				delete(s.index, k)
				evicted++
			}
		}
		s.total -= victim.size
		victim.f.Close()
		os.Remove(victim.path)
		s.metrics.evictions.Add(evicted)
	}
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns the store's on-disk footprint across segment files.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Close releases the segment file handles. Further Gets miss and further
// Puts are dropped; the on-disk state remains valid for a later Open.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, seg := range s.segs {
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	s.index = make(map[string]entry)
	return first
}
