// Wall-clock leaf for the result store, quarantined in this file by the
// localvet allowance table (cmd/localvet): the one stamp below is the
// package's only clock read. It feeds record.StoredUnixNanos — operator
// telemetry on disk — and is never read back into a served Result, so the
// cache's byte-identity guarantee does not depend on it. Everything else in
// internal/store must stay nondetflow-clean.
package store

import "time"

// nowNanos reads the wall clock for the stored-at stamp. Leaf-confined
// wallclock exemption; see the localvet leafExemptions table.
func nowNanos() int64 { return time.Now().UnixNano() }
