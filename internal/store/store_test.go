package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"locality/internal/obs"
)

func openT(t *testing.T, o Options) *Store {
	t.Helper()
	s, err := Open(o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	if _, ok := s.Get("missing"); ok {
		t.Fatalf("Get on empty store reported a hit")
	}
	want := Result{Output: "| a | b |\n| 1 | 2 |\n", Batches: 7}
	s.Put("k1", want)
	got, ok := s.Get("k1")
	if !ok || got != want {
		t.Fatalf("Get(k1) = %+v, %v; want %+v, true", got, ok, want)
	}
	// Overwrite: last write wins.
	want2 := Result{Output: "updated", Batches: 9}
	s.Put("k1", want2)
	if got, ok := s.Get("k1"); !ok || got != want2 {
		t.Fatalf("Get after overwrite = %+v, %v; want %+v, true", got, ok, want2)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrite; want 1", s.Len())
	}
}

func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	want := Result{Output: strings.Repeat("row\n", 100), Batches: 3}
	s.Put("k", want)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openT(t, Options{Dir: dir})
	got, ok := s2.Get("k")
	if !ok || got != want {
		t.Fatalf("Get after reopen = %+v, %v; want %+v, true", got, ok, want)
	}
}

// TestStoreKillAndReopen reopens the directory without closing the first
// store — the crash shape: file handles die with the process, nothing is
// flushed beyond what the kernel already has from the write syscalls.
func TestStoreKillAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	want := Result{Output: "survives a crash", Batches: 2}
	s.Put("k", want)
	// No Close: simulate the process dying.
	s2 := openT(t, Options{Dir: dir})
	got, ok := s2.Get("k")
	if !ok || got != want {
		t.Fatalf("Get after kill-and-reopen = %+v, %v; want %+v, true", got, ok, want)
	}
}

func segPaths(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	return paths
}

func TestStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	intact := Result{Output: "intact", Batches: 1}
	s.Put("good", intact)
	s.Put("torn", Result{Output: strings.Repeat("x", 4096), Batches: 2})
	s.Close()

	paths := segPaths(t, dir)
	if len(paths) != 1 {
		t.Fatalf("segments = %v; want exactly one", paths)
	}
	info, err := os.Stat(paths[0])
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	// Cut the file mid-way through the second record.
	if err := os.Truncate(paths[0], info.Size()-100); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	s2 := openT(t, Options{Dir: dir})
	if got, ok := s2.Get("good"); !ok || got != intact {
		t.Fatalf("record before torn tail lost: %+v, %v", got, ok)
	}
	if _, ok := s2.Get("torn"); ok {
		t.Fatalf("torn record served after recovery")
	}
	// Recovery must have truncated the tail so new writes land cleanly.
	after := Result{Output: "after recovery", Batches: 5}
	s2.Put("new", after)
	s2.Close()
	s3 := openT(t, Options{Dir: dir})
	if got, ok := s3.Get("new"); !ok || got != after {
		t.Fatalf("write after recovery lost: %+v, %v", got, ok)
	}
	if got, ok := s3.Get("good"); !ok || got != intact {
		t.Fatalf("original record lost after post-recovery write: %+v, %v", got, ok)
	}
}

func TestStoreCorruptRecordIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	s.Put("k", Result{Output: "payload-to-corrupt", Batches: 1})
	s.Close()

	paths := segPaths(t, dir)
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Flip a payload byte without touching the length prefix: the CRC now
	// disagrees, so the scan on Open must refuse the record.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(paths[0], data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	s2 := openT(t, Options{Dir: dir})
	if _, ok := s2.Get("k"); ok {
		t.Fatalf("corrupt record served")
	}
}

func TestStoreVersionMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	s.Put("k", Result{Output: "old-schema", Batches: 1})
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, versionFile), []byte("locality-store/v0\n"), 0o644); err != nil {
		t.Fatalf("write version: %v", err)
	}
	s2 := openT(t, Options{Dir: dir})
	if _, ok := s2.Get("k"); ok {
		t.Fatalf("record served across a schema-version mismatch")
	}
	data, err := os.ReadFile(filepath.Join(dir, versionFile))
	if err != nil || strings.TrimSpace(string(data)) != SchemaVersion {
		t.Fatalf("VERSION not rewritten: %q, %v", data, err)
	}
}

func TestStoreEviction(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	// Tiny budget: each ~1KiB record rolls its own segment, and the third
	// write must push the first segment out.
	s := openT(t, Options{Dir: dir, MaxBytes: 2300, SegmentBytes: 1, Metrics: reg})
	payload := strings.Repeat("p", 1024)
	for i := 0; i < 4; i++ {
		s.Put(fmt.Sprintf("k%d", i), Result{Output: payload, Batches: i})
	}
	if _, ok := s.Get("k0"); ok {
		t.Fatalf("oldest record survived past the byte budget")
	}
	if got, ok := s.Get("k3"); !ok || got.Batches != 3 {
		t.Fatalf("newest record lost to eviction: %+v, %v", got, ok)
	}
	if s.Bytes() > 2300 {
		t.Fatalf("Bytes = %d exceeds budget", s.Bytes())
	}
	var prom strings.Builder
	reg.WriteProm(&prom)
	if !strings.Contains(prom.String(), "locality_store_evictions_total") {
		t.Fatalf("evictions counter missing from exposition:\n%s", prom.String())
	}
	// Evicted segment files must be gone from disk too.
	if n := len(segPaths(t, dir)); n > 3 {
		t.Fatalf("%d segment files on disk; eviction left stale files", n)
	}
}

func TestStoreEvictionSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, MaxBytes: 2300, SegmentBytes: 1})
	payload := strings.Repeat("p", 1024)
	for i := 0; i < 4; i++ {
		s.Put(fmt.Sprintf("k%d", i), Result{Output: payload, Batches: i})
	}
	s.Close()
	s2 := openT(t, Options{Dir: dir, MaxBytes: 2300, SegmentBytes: 1})
	if _, ok := s2.Get("k0"); ok {
		t.Fatalf("evicted record resurrected on reopen")
	}
	if got, ok := s2.Get("k3"); !ok || got.Batches != 3 {
		t.Fatalf("retained record lost on reopen: %+v, %v", got, ok)
	}
}

func TestStoreMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s := openT(t, Options{Dir: dir, Metrics: reg})
	s.Get("nope")
	s.Put("k", Result{Output: "v", Batches: 1})
	s.Get("k")
	var prom strings.Builder
	reg.WriteProm(&prom)
	text := prom.String()
	for _, want := range []string{
		"locality_store_hits_total 1",
		"locality_store_misses_total 1",
		"locality_store_bytes_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestStoreConcurrent hammers Put/Get from many goroutines under -race:
// the store must stay consistent (a Get returns either a miss or an exact
// previously-Put value, never a torn mix).
func TestStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir, SegmentBytes: 8 << 10})
	const (
		writers = 4
		readers = 4
		keys    = 16
		rounds  = 200
	)
	value := func(k, round int) Result {
		return Result{Output: fmt.Sprintf("key-%d-round-%d-%s", k, round, strings.Repeat("v", 64)), Batches: round}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (w*rounds + r) % keys
				s.Put(fmt.Sprintf("k%d", k), value(k, r))
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (g*rounds + r) % keys
				got, ok := s.Get(fmt.Sprintf("k%d", k))
				if !ok {
					continue
				}
				wantPrefix := fmt.Sprintf("key-%d-round-%d-", k, got.Batches)
				if !strings.HasPrefix(got.Output, wantPrefix) {
					t.Errorf("torn read for k%d: %q", k, got.Output)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Every key must round-trip its last write after a reopen.
	s.Close()
	s2 := openT(t, Options{Dir: dir, SegmentBytes: 8 << 10})
	for k := 0; k < keys; k++ {
		got, ok := s2.Get(fmt.Sprintf("k%d", k))
		if !ok {
			continue // may have been evicted by a roll; absence is legal
		}
		if !strings.HasPrefix(got.Output, fmt.Sprintf("key-%d-round-", k)) {
			t.Fatalf("reopened store served mismatched record for k%d: %q", k, got.Output)
		}
	}
}

func TestStoreOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatalf("Open with empty dir succeeded")
	}
}

func TestStorePutAfterCloseDropped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, Options{Dir: dir})
	s.Close()
	s.Put("k", Result{Output: "late", Batches: 1}) // must not panic
	if _, ok := s.Get("k"); ok {
		t.Fatalf("Get served a record after Close")
	}
}
