package matching_test

import (
	"errors"
	"testing"

	"locality/internal/graph"
	"locality/internal/ids"
	"locality/internal/lcl"
	"locality/internal/matching"
	"locality/internal/rng"
	"locality/internal/sim"
)

func matchLabels(res *sim.Result) []lcl.MatchLabel {
	out := make([]lcl.MatchLabel, len(res.Outputs))
	for v, o := range res.Outputs {
		out[v] = o.(lcl.MatchLabel)
	}
	return out
}

func TestRandMatchingValid(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 8; trial++ {
		var g *graph.Graph
		switch trial % 4 {
		case 0:
			g = graph.RandomTree(150, 6, r)
		case 1:
			g = graph.Ring(40)
		case 2:
			g = graph.RandomBoundedDegree(120, 250, 8, r)
		default:
			g = graph.Path(2)
		}
		res, err := sim.Run(g, sim.Config{Randomized: true, Seed: uint64(trial + 1)},
			matching.NewRandFactory(matching.RandOptions{}))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := lcl.ValidateMatching(lcl.Instance{G: g}, matchLabels(res)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestDetMatchingValid(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 6; trial++ {
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = graph.RandomTree(100, 5, r)
		case 1:
			g = graph.Ring(30)
		default:
			g = graph.RandomBoundedDegree(80, 160, 6, r)
		}
		n := g.N()
		res, err := sim.Run(g, sim.Config{IDs: ids.Shuffled(n, r), MaxRounds: 10000},
			matching.NewDetFactory(matching.DetOptions{}))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := lcl.ValidateMatching(lcl.Instance{G: g}, matchLabels(res)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := matching.DetRounds(matching.DetOptions{}, n, g.MaxDegree())
		if res.Rounds != want {
			t.Errorf("trial %d: rounds %d, predicted %d", trial, res.Rounds, want)
		}
	}
}

func TestDetMatchingEngineEquivalence(t *testing.T) {
	r := rng.New(6)
	g := graph.RandomTree(60, 4, r)
	assignment := ids.Shuffled(60, r)
	var prev []lcl.MatchLabel
	for _, engine := range []sim.Engine{sim.EngineSequential, sim.EngineConcurrent} {
		res, err := sim.Run(g, sim.Config{IDs: assignment, Engine: engine, MaxRounds: 10000},
			matching.NewDetFactory(matching.DetOptions{}))
		if err != nil {
			t.Fatal(err)
		}
		cur := matchLabels(res)
		if prev != nil {
			for v := range cur {
				if cur[v] != prev[v] {
					t.Fatalf("engines disagree at vertex %d: %d vs %d", v, prev[v], cur[v])
				}
			}
		}
		prev = cur
	}
}

func TestRandMatchingRoundsLogarithmic(t *testing.T) {
	r := rng.New(8)
	var rounds []int
	for _, n := range []int{64, 512, 4096} {
		g := graph.RandomBoundedDegree(n, 2*n, 10, r)
		res, err := sim.Run(g, sim.Config{Randomized: true, Seed: 9},
			matching.NewRandFactory(matching.RandOptions{}))
		if err != nil {
			t.Fatal(err)
		}
		rounds = append(rounds, res.Rounds)
	}
	if rounds[2] > 6*rounds[0]+20 {
		t.Errorf("randomized matching growth not logarithmic: %v", rounds)
	}
}

func TestMatchingOnSingleEdge(t *testing.T) {
	g := graph.Path(2)
	res, err := sim.Run(g, sim.Config{IDs: ids.Sequential(2), MaxRounds: 10000},
		matching.NewDetFactory(matching.DetOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	labels := matchLabels(res)
	if labels[0] != 0 || labels[1] != 0 {
		t.Errorf("single edge not matched: %v", labels)
	}
}

func TestDetMatchingRequiresIDs(t *testing.T) {
	// The machine panics in Init; the hardened kernel turns that into a
	// structured ErrNodePanic instead of crashing the caller.
	_, err := sim.Run(graph.Path(3), sim.Config{}, matching.NewDetFactory(matching.DetOptions{}))
	if !errors.Is(err, sim.ErrNodePanic) {
		t.Fatalf("det matching without IDs: err = %v, want ErrNodePanic", err)
	}
}
