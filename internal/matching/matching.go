// Package matching implements maximal matching in both model variants —
// the second headline pair from the paper's Section I survey (randomized
// O(log Δ + log⁴ log n) [14] vs deterministic O(Δ + log* n)-flavored /
// O(log⁴ n) [12], [13]):
//
//   - A RandLOCAL proposal algorithm (Israeli–Itai style): unmatched
//     vertices flip sender/receiver coins, senders propose to a random
//     unmatched neighbor, receivers accept one proposal. O(log n) whp.
//   - A DetLOCAL algorithm via Linial on the line graph: vertices jointly
//     simulate their incident edges, reduce the edge coloring from the
//     ID-pair palette to 2Δ-1 colors (Theorem 2 + Kuhn–Wattenhofer), then
//     sweep the color classes, adding an edge when both endpoints are
//     free. O(log* n + Δ log Δ + Δ) rounds, deterministic.
//
// Outputs are lcl.MatchLabel (the matched port, or -1), verified by the
// maximal-matching LCL checker.
package matching

import (
	"fmt"

	"locality/internal/lcl"
	"locality/internal/linial"
	"locality/internal/mathx"
	"locality/internal/sim"
)

// RandOptions configures the randomized proposal machine.
type RandOptions struct {
	// MaxPhases caps the proposal phases; 0 means 8·ceil(log2 n)+16.
	MaxPhases int
}

type randMsg struct {
	Matched  bool
	Proposal bool // set only on the proposed port in sub-step A
	Accept   bool // set only on the accepted port in sub-step B
}

type randMatch struct {
	opt        RandOptions
	env        sim.Env
	matched    int // port, -1 if unmatched
	nbrMatched []bool
	proposedTo int // port we proposed to this phase, -1
	phases     int
}

var _ sim.Machine = (*randMatch)(nil)

// NewRandFactory returns the randomized maximal matching machine.
func NewRandFactory(opt RandOptions) sim.Factory {
	return func() sim.Machine { return &randMatch{opt: opt} }
}

func (m *randMatch) Init(env sim.Env) {
	if env.Rand == nil {
		panic("matching: randomized machine requires Config.Randomized")
	}
	m.env = env
	m.matched = -1
	m.proposedTo = -1
	m.nbrMatched = make([]bool, env.Degree)
	m.phases = m.opt.MaxPhases
	if m.phases == 0 {
		m.phases = 8*mathx.CeilLog2(env.N+1) + 16
	}
}

// Step: even steps are sub-step A (propose), odd steps (>= 3) are sub-step
// B (accept). Step 1 is a plain hello so everyone has fresh status.
func (m *randMatch) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	// Absorb neighbor statuses, acceptances and proposals.
	var proposals []int
	accepted := -1
	for p, msg := range recv {
		if msg == nil {
			continue
		}
		rm, ok := msg.(randMsg)
		if !ok {
			panic(fmt.Sprintf("matching: unexpected message %T", msg))
		}
		if rm.Matched {
			m.nbrMatched[p] = true
		}
		if rm.Proposal {
			proposals = append(proposals, p)
		}
		if rm.Accept && p == m.proposedTo {
			accepted = p
		}
	}
	if m.matched < 0 && accepted >= 0 {
		m.matched = accepted
	}
	if m.matched >= 0 {
		// Announce once more so neighbors stop proposing, then halt.
		return m.broadcast(randMsg{Matched: true}), true
	}
	// Unmatched: any unmatched neighbors left?
	anyFree := false
	for p := 0; p < m.env.Degree; p++ {
		if !m.nbrMatched[p] {
			anyFree = true
			break
		}
	}
	if !anyFree {
		return nil, true // maximality satisfied locally
	}
	if step/2 >= m.phases {
		return nil, true // budget exhausted; visible failure
	}
	switch {
	case step%2 == 0:
		// Sub-step A: coin flip; senders propose to one random free port.
		m.proposedTo = -1
		send := m.broadcast(randMsg{})
		if m.env.Rand.Bool() {
			free := make([]int, 0, m.env.Degree)
			for p := 0; p < m.env.Degree; p++ {
				if !m.nbrMatched[p] {
					free = append(free, p)
				}
			}
			p := free[m.env.Rand.Intn(len(free))]
			m.proposedTo = p
			send[p] = randMsg{Proposal: true}
		}
		return send, false
	case step > 1:
		// Sub-step B: receivers (did not propose) accept the lowest
		// incoming proposal from a free neighbor.
		if m.proposedTo < 0 {
			for _, p := range proposals {
				if !m.nbrMatched[p] {
					m.matched = p
					send := m.broadcast(randMsg{Matched: true})
					send[p] = randMsg{Matched: true, Accept: true}
					return send, true
				}
			}
		}
		return m.broadcast(randMsg{}), false
	default:
		// Step 1: hello.
		return m.broadcast(randMsg{}), false
	}
}

func (m *randMatch) broadcast(msg randMsg) []sim.Message {
	send := make([]sim.Message, m.env.Degree)
	for p := range send {
		send[p] = msg
	}
	return send
}

func (m *randMatch) Output() any { return lcl.MatchLabel(m.matched) }

// DetOptions configures the deterministic line-graph machine.
type DetOptions struct {
	// IDSpace bounds the vertex IDs (1..IDSpace); 0 means Env.N.
	IDSpace int
	// Delta bounds the maximum degree; 0 means Env.MaxDeg.
	Delta int
}

// detPlan is the shared schedule of the deterministic machine.
type detPlan struct {
	sched  []linial.Family
	fp     int
	kw     linial.KWPlan
	kwAt   [][2]int
	target int // 2Δ-1
}

func newDetPlan(idSpace, delta int) detPlan {
	deltaL := mathx.Max(1, 2*delta-2) // line graph degree bound
	target := mathx.Max(1, 2*delta-1)
	k0 := idSpace * idSpace
	p := detPlan{
		sched:  linial.Schedule(k0, deltaL),
		fp:     linial.FixedPoint(k0, deltaL),
		target: target,
	}
	if p.fp > target {
		p.kw = linial.NewKWPlan(p.fp, target)
		for i := range p.kw.Palettes {
			for j := 0; j < p.kw.PassLen(i); j++ {
				p.kwAt = append(p.kwAt, [2]int{i, j})
			}
		}
	}
	return p
}

// detMsg is the per-port message of the deterministic machine.
type detMsg struct {
	ID         uint64
	EdgeColors []int // sender's incident edge colors in its port order
	ThisPort   int   // sender's port index for this edge
	Matched    bool
}

type detMatch struct {
	opt     DetOptions
	plan    detPlan
	env     sim.Env
	nbrID   []uint64
	colors  []int // current color of the edge at each port (0-based)
	matched int
	nbrFree []bool
}

var _ sim.Machine = (*detMatch)(nil)

// NewDetFactory returns the deterministic maximal matching machine.
func NewDetFactory(opt DetOptions) sim.Factory {
	return func() sim.Machine { return &detMatch{opt: opt} }
}

func (m *detMatch) Init(env sim.Env) {
	if !env.HasID {
		panic("matching: deterministic machine requires IDs")
	}
	m.env = env
	if m.opt.IDSpace == 0 {
		m.opt.IDSpace = env.N
	}
	if m.opt.Delta == 0 {
		m.opt.Delta = env.MaxDeg
	}
	m.plan = newDetPlan(m.opt.IDSpace, m.opt.Delta)
	m.nbrID = make([]uint64, env.Degree)
	m.colors = make([]int, env.Degree)
	m.matched = -1
	m.nbrFree = make([]bool, env.Degree)
	for p := range m.nbrFree {
		m.nbrFree[p] = true
	}
}

// edgeColor0 derives the initial line-graph color of an edge from its
// endpoint IDs: the rank of the ordered pair in the IDSpace² palette.
func (m *detMatch) edgeColor0(a, b uint64) int {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return int(lo-1)*m.opt.IDSpace + int(hi-1)
}

// Step schedule (S = len(sched), K = len(kwAt), T = target):
//
//	step 1:            broadcast ID
//	step 2:            derive initial edge colors; broadcast color vectors
//	steps 3..2+S:      Linial reduction on the line graph
//	steps 3+S..2+S+K:  Kuhn–Wattenhofer passes
//	then T steps:      class sweep; class c matches free-free edges
func (m *detMatch) Step(step int, recv []sim.Message) ([]sim.Message, bool) {
	s, k := len(m.plan.sched), len(m.plan.kwAt)
	switch {
	case step == 1:
		return m.sendVectors(true), false
	case step == 2:
		for p, msg := range recv {
			dm := msg.(detMsg)
			m.nbrID[p] = dm.ID
			m.colors[p] = m.edgeColor0(m.env.ID, dm.ID)
		}
		return m.sendVectors(false), false
	case step <= 2+s:
		fam := m.plan.sched[step-3]
		m.applyReduction(recv, func(own int, nbrs []int) int {
			return fam.Reduce(own, nbrs)
		})
		return m.sendVectors(false), false
	case step <= 2+s+k:
		pass, sub := m.plan.kwAt[step-3-s][0], m.plan.kwAt[step-3-s][1]
		m.applyReduction(recv, func(own int, nbrs []int) int {
			return m.plan.kw.Recolor(pass, sub, own, nbrs)
		})
		return m.sendVectors(false), false
	default:
		class := step - 2 - s - k // 1-based sweep class
		m.absorbSweep(recv)
		if m.matched < 0 && class >= 1 && class <= m.plan.target {
			for p := 0; p < m.env.Degree; p++ {
				// colors are 0-based: class c handles color c-1.
				if m.colors[p] == class-1 && m.nbrFree[p] {
					m.matched = p
					break
				}
			}
		}
		if class > m.plan.target {
			return nil, true
		}
		return m.sendVectors(false), false
	}
}

// applyReduction recomputes every incident edge's color from both
// endpoints' constraint sets; both endpoints compute identical results.
func (m *detMatch) applyReduction(recv []sim.Message, reduce func(own int, nbrs []int) int) {
	newColors := make([]int, m.env.Degree)
	for p := range newColors {
		msg := recv[p]
		dm, ok := msg.(detMsg)
		if !ok {
			panic(fmt.Sprintf("matching: expected detMsg on port %d, got %T", p, msg))
		}
		own := m.colors[p]
		nbrs := make([]int, 0, 2*m.opt.Delta)
		for q, c := range m.colors {
			if q != p {
				nbrs = append(nbrs, c)
			}
		}
		for q, c := range dm.EdgeColors {
			if q != dm.ThisPort {
				nbrs = append(nbrs, c)
			}
		}
		newColors[p] = reduce(own, nbrs)
	}
	m.colors = newColors
}

func (m *detMatch) absorbSweep(recv []sim.Message) {
	for p, msg := range recv {
		if msg == nil {
			continue
		}
		dm, ok := msg.(detMsg)
		if !ok {
			panic(fmt.Sprintf("matching: unexpected sweep message %T", msg))
		}
		if dm.Matched {
			m.nbrFree[p] = false
		}
	}
}

// sendVectors broadcasts the per-port color vectors (plus ID on request).
func (m *detMatch) sendVectors(withID bool) []sim.Message {
	send := make([]sim.Message, m.env.Degree)
	for p := range send {
		msg := detMsg{ThisPort: p, Matched: m.matched >= 0}
		if withID {
			msg.ID = m.env.ID
		}
		msg.EdgeColors = append([]int(nil), m.colors...)
		send[p] = msg
	}
	return send
}

func (m *detMatch) Output() any { return lcl.MatchLabel(m.matched) }

// DetRounds predicts the deterministic machine's round count.
func DetRounds(opt DetOptions, n, maxDeg int) int {
	if opt.IDSpace == 0 {
		opt.IDSpace = n
	}
	if opt.Delta == 0 {
		opt.Delta = maxDeg
	}
	p := newDetPlan(opt.IDSpace, opt.Delta)
	return 2 + len(p.sched) + len(p.kwAt) + p.target
}
