package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogStar(t *testing.T) {
	tests := []struct {
		x    float64
		want int
	}{
		{0.5, 0},
		{1, 0},
		{2, 1},
		{3, 2},
		{4, 2},
		{5, 3},
		{16, 3},
		{17, 4},
		{65536, 4},
		{65537, 5},
		{1e18, 5},
	}
	for _, tt := range tests {
		if got := LogStar(tt.x); got != tt.want {
			t.Errorf("LogStar(%v) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestCeilFloorLog2(t *testing.T) {
	tests := []struct {
		x           int
		ceil, floor int
	}{
		{1, 0, 0},
		{2, 1, 1},
		{3, 2, 1},
		{4, 2, 2},
		{5, 3, 2},
		{1024, 10, 10},
		{1025, 11, 10},
	}
	for _, tt := range tests {
		if got := CeilLog2(tt.x); got != tt.ceil {
			t.Errorf("CeilLog2(%d) = %d, want %d", tt.x, got, tt.ceil)
		}
		if got := FloorLog2(tt.x); got != tt.floor {
			t.Errorf("FloorLog2(%d) = %d, want %d", tt.x, got, tt.floor)
		}
	}
}

func TestCeilLog2PanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CeilLog2(0) did not panic")
		}
	}()
	CeilLog2(0)
}

func TestIsPrimeSmall(t *testing.T) {
	primes := map[int]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 13: true,
		97: true, 7919: true,
	}
	composites := []int{-7, 0, 1, 4, 6, 9, 15, 25, 49, 100, 7917}
	for p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true, want false", c)
		}
	}
}

func TestNextPrime(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11}, {14, 17}, {100, 101},
	}
	for _, tt := range tests {
		if got := NextPrime(tt.n); got != tt.want {
			t.Errorf("NextPrime(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestNextPrimeProperty(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%10000) + 2
		p := NextPrime(n)
		if p < n || !IsPrime(p) {
			return false
		}
		// No prime strictly between n and p.
		for m := n; m < p; m++ {
			if IsPrime(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowInt(t *testing.T) {
	tests := []struct{ b, e, want int }{
		{2, 0, 1},
		{2, 10, 1024},
		{3, 4, 81},
		{10, 18, 1000000000000000000},
		{0, 5, 0},
		{1, 1000, 1},
	}
	for _, tt := range tests {
		if got := PowInt(tt.b, tt.e); got != tt.want {
			t.Errorf("PowInt(%d,%d) = %d, want %d", tt.b, tt.e, got, tt.want)
		}
	}
	if got := PowInt(10, 40); got != math.MaxInt64 {
		t.Errorf("PowInt(10,40) = %d, want saturation at MaxInt64", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summarize basic stats wrong: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v, want sqrt(2.5)", s.Std)
	}
	if got := Summarize(nil); got != (Stats{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", got)
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P95 != 7 || one.Std != 0 {
		t.Errorf("single-sample stats wrong: %+v", one)
	}
}

func TestSummarizeIntsMatchesFloat(t *testing.T) {
	si := SummarizeInts([]int{4, 8, 15, 16, 23, 42})
	sf := Summarize([]float64{4, 8, 15, 16, 23, 42})
	if si != sf {
		t.Errorf("SummarizeInts = %+v, Summarize = %+v", si, sf)
	}
}

func TestLogBase(t *testing.T) {
	if got := LogBase(2, 8); math.Abs(got-3) > 1e-12 {
		t.Errorf("LogBase(2,8) = %v, want 3", got)
	}
	if got := LogBase(3, 81); math.Abs(got-4) > 1e-12 {
		t.Errorf("LogBase(3,81) = %v, want 4", got)
	}
}

func TestMinMaxAbs(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min wrong")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max wrong")
	}
	if Abs(-4) != 4 || Abs(4) != 4 || Abs(0) != 0 {
		t.Error("Abs wrong")
	}
}
