// Package mathx provides the small mathematical toolbox the rest of the
// library builds on: iterated logarithms, prime search (used by the
// polynomial cover-free families behind Linial's coloring), integer helpers,
// and summary statistics for the experiment harness.
//
// Everything here is deterministic and allocation-light; several functions
// sit on hot paths of the simulator.
package mathx

import (
	"fmt"
	"math"
	"sort"
)

// Log2 returns the base-2 logarithm of x as a float64.
// It panics if x <= 0; callers in this library always pass positive values
// derived from graph sizes.
func Log2(x float64) float64 {
	if x <= 0 {
		panic(fmt.Sprintf("mathx: Log2 of non-positive value %v", x))
	}
	return math.Log2(x)
}

// CeilLog2 returns ceil(log2(x)) for x >= 1. CeilLog2(1) == 0.
func CeilLog2(x int) int {
	if x < 1 {
		panic(fmt.Sprintf("mathx: CeilLog2 of value %d < 1", x))
	}
	n, p := 0, 1
	for p < x {
		p <<= 1
		n++
	}
	return n
}

// FloorLog2 returns floor(log2(x)) for x >= 1.
func FloorLog2(x int) int {
	if x < 1 {
		panic(fmt.Sprintf("mathx: FloorLog2 of value %d < 1", x))
	}
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// LogStar returns log*(x): the number of times log2 must be iterated,
// starting from x, before the result is at most 1.
//
// LogStar(1) = 0, LogStar(2) = 1, LogStar(4) = 2, LogStar(16) = 3,
// LogStar(65536) = 4. This is the yardstick for the O(log* n) running times
// throughout the paper.
func LogStar(x float64) int {
	if x <= 1 {
		return 0
	}
	n := 0
	for x > 1 {
		x = math.Log2(x)
		n++
		if n > 10 {
			// log* of anything representable in a float64 is at most 5;
			// this is an internal sanity backstop.
			panic("mathx: LogStar failed to converge")
		}
	}
	return n
}

// LogBase returns log_base(x) for base > 1 and x > 0.
func LogBase(base, x float64) float64 {
	if base <= 1 {
		panic(fmt.Sprintf("mathx: LogBase with base %v <= 1", base))
	}
	return math.Log(x) / math.Log(base)
}

// IsPrime reports whether n is prime, by trial division.
// It is intended for the modest primes (< 10^7) used by cover-free family
// construction, where trial division is more than fast enough.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime >= n.
func NextPrime(n int) int {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for !IsPrime(n) {
		n += 2
	}
	return n
}

// PowInt returns base^exp for non-negative exp, saturating at math.MaxInt64
// instead of overflowing. The saturation behaviour is what the cover-free
// construction wants: it only ever asks "is q^(d+1) >= k".
func PowInt(base, exp int) int {
	if exp < 0 {
		panic(fmt.Sprintf("mathx: PowInt with negative exponent %d", exp))
	}
	result := 1
	for i := 0; i < exp; i++ {
		if base != 0 && result > math.MaxInt64/base {
			return math.MaxInt64
		}
		result *= base
	}
	return result
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Abs returns the absolute value of a.
func Abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// Stats summarizes a sample of observations. It is the unit the experiment
// harness aggregates and renders.
type Stats struct {
	Count int
	Mean  float64
	Std   float64
	Min   float64
	Max   float64
	P50   float64
	P95   float64
}

// Summarize computes summary statistics of xs. It returns the zero Stats for
// an empty sample.
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := Stats{Count: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = quantile(sorted, 0.50)
	s.P95 = quantile(sorted, 0.95)
	return s
}

// SummarizeInts converts xs to float64 and summarizes them.
func SummarizeInts(xs []int) Stats {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// quantile returns the q-quantile of an already-sorted sample using nearest
// rank with linear interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
