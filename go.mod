module locality

go 1.22
