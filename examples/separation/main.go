// Separation: the paper's headline, measured. Sweeps n and prints the
// round counts of the randomized (Theorem 11) and deterministic (Theorem 9)
// Δ-coloring algorithms side by side: the deterministic slope is Θ(log n),
// the randomized one is nearly flat (Θ(log log n)).
package main

import (
	"fmt"
	"log"

	"locality"
)

func main() {
	const delta = 8
	fmt.Printf("%8s  %12s  %12s\n", "n", "rand rounds", "det rounds")
	r := locality.NewRand(2016)
	for _, n := range []int{256, 1024, 4096, 16384, 65536} {
		g := locality.RandomTree(n, delta, r)

		randRes, err := locality.Run(g,
			locality.RunConfig{Randomized: true, Seed: uint64(n), MaxRounds: 1 << 22},
			locality.NewTheorem11Factory(locality.Theorem11Options{Delta: delta}))
		if err != nil {
			log.Fatal(err)
		}
		if err := locality.ValidateColoring(g, delta, locality.ColoringOutputs(randRes.Outputs)); err != nil {
			log.Fatalf("n=%d: randomized coloring invalid: %v", n, err)
		}

		detRes, err := locality.Run(g,
			locality.RunConfig{IDs: locality.ShuffledIDs(n, r), MaxRounds: 1 << 22},
			locality.NewTreeColoringFactory(locality.TreeColoringOptions{Q: delta}))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %12d  %12d\n", n, randRes.Rounds, detRes.Rounds)
	}
	fmt.Println("\nthe separation is in the slopes: doubling n adds a constant to the det")
	fmt.Println("column (Θ(log n) total) but almost nothing to the rand column (Θ(log log n));")
	fmt.Println("Theorem 5 proves the det side cannot do better, Theorem 11 realizes the rand side.")
}
