// Speedup: Theorem 6 in action. A deliberately slow (Δ+1)-coloring
// algorithm — its round count carries an ε·log_Δ n term — is transformed
// black-box: collect a small view, compute short IDs by simulating Linial's
// coloring on a power graph, then re-run the algorithm pretending the graph
// has only 2^ℓ' vertices. The transformed round count is n-independent.
package main

import (
	"fmt"
	"log"

	"locality"
	"locality/internal/mathx"
	"locality/internal/speedup"
)

func main() {
	const delta = 4
	mk := speedup.NewSlowColoringFactory(delta, 1, 8) // ε = 1/8
	tBound := speedup.SlowColoringRounds(delta, 1, 8)

	fmt.Printf("%6s  %4s  %12s  %12s  %4s\n", "n", "ℓ", "slow rounds", "transformed", "ℓ'")
	r := locality.NewRand(3)
	for _, n := range []int{64, 256, 1024} {
		g := locality.RandomTree(n, delta, r)
		bits := mathx.CeilLog2(n + 1)
		plan := locality.NewTheorem6Plan(tBound, delta, bits, 1)
		res, err := locality.Run(g,
			locality.RunConfig{IDs: locality.ShuffledIDs(n, r), MaxRounds: 1 << 22},
			locality.NewTheorem6Factory(plan, bits, mk(plan.BitsOut)))
		if err != nil {
			log.Fatal(err)
		}
		colors := make([]int, n)
		for v, o := range res.Outputs {
			colors[v] = o.(int)
		}
		if err := locality.ValidateColoring(g, delta+1, colors); err != nil {
			log.Fatalf("n=%d: transformed coloring invalid: %v", n, err)
		}
		fmt.Printf("%6d  %4d  %12d  %12d  %4d\n", n, bits, tBound(delta, bits), res.Rounds, plan.BitsOut)
	}

	fmt.Println("\nplan-level sweep at ε=1/2 (the ID-compression regime):")
	tb2 := speedup.SlowColoringRounds(delta, 1, 2)
	for _, bits := range []int{56, 58, 60, 62} {
		plan := locality.NewTheorem6Plan(tb2, delta, bits, 1)
		fmt.Printf("  ℓ=%d: slow=%d rounds, transformed=%d rounds, ℓ'=%d\n",
			bits, tb2(delta, bits), plan.R+plan.InnerT, plan.BitsOut)
	}
	fmt.Println("ℓ' and the transformed count are flat in ℓ while the slow count keeps growing —")
	fmt.Println("the mechanism behind 'no natural complexities between ω(log* n) and o(log n)'.")
}
