// Quickstart: generate a tree, Δ-color it with the paper's Theorem 11
// RandLOCAL algorithm, verify the result with the LCL checker, and compare
// the round count against the deterministic baseline.
package main

import (
	"fmt"
	"log"

	"locality"
)

func main() {
	const (
		n     = 4096
		delta = 8
		seed  = 42
	)
	r := locality.NewRand(seed)
	g := locality.RandomTree(n, delta, r)
	fmt.Printf("instance: random tree, n=%d, Δ=%d\n", g.N(), g.MaxDegree())

	// RandLOCAL: no IDs; every vertex gets a private random stream.
	randRes, err := locality.Run(g,
		locality.RunConfig{Randomized: true, Seed: seed, MaxRounds: 1 << 22},
		locality.NewTheorem11Factory(locality.Theorem11Options{Delta: delta}))
	if err != nil {
		log.Fatalf("randomized run: %v", err)
	}
	colors := locality.ColoringOutputs(randRes.Outputs)
	if err := locality.ValidateColoring(g, delta, colors); err != nil {
		log.Fatalf("randomized coloring invalid: %v", err)
	}
	fmt.Printf("Theorem 11 (RandLOCAL): %d rounds, valid %d-coloring\n", randRes.Rounds, delta)

	// DetLOCAL baseline: unique IDs, Theorem 9 style forest coloring.
	detRes, err := locality.Run(g,
		locality.RunConfig{IDs: locality.ShuffledIDs(n, r), MaxRounds: 1 << 22},
		locality.NewTreeColoringFactory(locality.TreeColoringOptions{Q: delta}))
	if err != nil {
		log.Fatalf("deterministic run: %v", err)
	}
	detColors := make([]int, n)
	for v, o := range detRes.Outputs {
		detColors[v] = o.(int)
	}
	if err := locality.ValidateColoring(g, delta, detColors); err != nil {
		log.Fatalf("deterministic coloring invalid: %v", err)
	}
	fmt.Printf("Theorem 9  (DetLOCAL):  %d rounds, valid %d-coloring\n", detRes.Rounds, delta)

	// The distributed verifier: solutions of an LCL are checkable in ONE
	// round, inside the same simulator.
	inst := locality.LCLInstance{G: g}
	labels := make([]any, n)
	for v, c := range colors {
		labels[v] = c
	}
	ok, rounds, err := locality.VerifyDistributed(locality.ColoringProblem(delta), inst, labels)
	fmt.Printf("distributed verification: ok=%v in %d round(s) (err=%v)\n", ok, rounds, err)
}
