// Derandomize: Theorem 3, executed exhaustively. For tiny n the proof's
// objects are all finite: the class G_{n,Δ} of ID-labeled instances, the
// exact failure probability of a RandLOCAL algorithm (every joint random-bit
// assignment enumerated), and the space of bit-fixing functions φ. The
// program finds the lexicographically-first good φ* and verifies that the
// deterministic algorithm A_Det[φ*] errs on ZERO instances.
package main

import (
	"fmt"

	"locality/internal/derand"
)

func main() {
	const (
		bits    = 2
		n       = 3
		delta   = 2
		idSpace = 3
	)
	alg := derand.PriorityMIS(bits)
	instances := derand.EnumerateInstances(n, delta, idSpace)
	fmt.Printf("G_{%d,%d} with IDs from 1..%d: %d instances\n", n, delta, idSpace, len(instances))

	var unionBound float64
	for _, inst := range instances {
		unionBound += derand.ExactFailure(alg, inst)
	}
	fmt.Printf("Σ exact failure probabilities of A_Rand (union bound on bad φ): %.4f\n", unionBound)

	res := derand.SearchPhi(alg, instances, idSpace, 1<<22)
	fmt.Printf("φ space scanned exhaustively: %d candidates, %d bad (fraction %.4f)\n",
		res.Tried, res.BadCount, float64(res.BadCount)/float64(res.Tried))
	if res.Found == nil {
		fmt.Println("no good φ exists at this bit budget")
		return
	}
	fmt.Printf("lexicographically first good φ*: ID 1↦%02b, ID 2↦%02b, ID 3↦%02b\n",
		res.Found[1], res.Found[2], res.Found[3])
	if derand.IsGood(alg, instances, res.Found) {
		fmt.Println("verified: A_Det[φ*] solves MIS on EVERY instance — Theorem 3's conclusion,")
		fmt.Println("checked mechanically rather than asymptotically.")
	}
}
