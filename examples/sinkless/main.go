// Sinkless: the Brandt et al. problem pair behind the paper's Theorem 4.
// Generates a Δ-regular edge-colored graph, solves sinkless orientation in
// RandLOCAL, derives a sinkless coloring from it (the Lemma 2 reduction),
// re-derives an orientation from the coloring (Lemma 1), and shows the
// exact 0-round failure floor 1/Δ².
package main

import (
	"fmt"
	"log"

	"locality"
	"locality/internal/lcl"
	"locality/internal/sim"
	"locality/internal/sinkless"
)

func main() {
	const (
		half = 256
		d    = 3
	)
	r := locality.NewRand(7)
	ecg := locality.RandomRegularBipartite(half, d, r)
	inst := lcl.Instance{G: ecg.Graph, EdgeColors: ecg.Colors, NumEdgeColors: d}
	inputs := inst.NodeInputs()
	fmt.Printf("instance: %d-regular bipartite, n=%d, proper %d-edge-colored\n", d, ecg.N(), d)

	// Randomized sinkless orientation.
	res, err := sim.Run(ecg.Graph, sim.Config{Randomized: true, Seed: 11, Inputs: inputs},
		locality.NewSinklessOrientationFactory(sinkless.OrientOptions{}))
	if err != nil {
		log.Fatal(err)
	}
	if err := lcl.ValidateOrientation(inst, sinkless.OrientLabels(res.Outputs)); err != nil {
		log.Fatalf("orientation invalid: %v", err)
	}
	worst := 0
	for _, s := range sinkless.LastSinkSteps(res.Outputs) {
		if s > worst {
			worst = s
		}
	}
	fmt.Printf("sinkless orientation: valid; last sink died at step %d (budget %d rounds)\n",
		worst, res.Rounds)

	// Lemma 2 direction: coloring from orientation, zero extra rounds.
	cres, err := sim.Run(ecg.Graph, sim.Config{Randomized: true, Seed: 11, Inputs: inputs},
		locality.NewColoringFromOrientationFactory(
			locality.NewSinklessOrientationFactory(sinkless.OrientOptions{})))
	if err != nil {
		log.Fatal(err)
	}
	colors := sim.IntOutputs(cres)
	if err := lcl.SinklessColoring(d).Validate(inst, lcl.IntLabels(colors)); err != nil {
		log.Fatalf("derived coloring invalid: %v", err)
	}
	fmt.Printf("Lemma 2 reduction: valid %d-sinkless coloring in %d rounds (same as orientation)\n",
		d, cres.Rounds)

	// Theorem 4 base case, exactly.
	val, p := locality.ZeroRoundMinimax(d, 4*d)
	fmt.Printf("Theorem 4 base case: best 0-round strategy %v fails on the worst edge with "+
		"probability %.4f = 1/Δ² = %.4f\n", p, val, locality.ZeroRoundLowerBound(d))
}
