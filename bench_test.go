// Package locality_test hosts the benchmark harness: one benchmark per
// experiment in DESIGN.md's index (E1–E11). Each benchmark executes the
// same driver that generates the corresponding EXPERIMENTS.md table (quick
// scale, so `go test -bench=.` completes in minutes) and reports the
// headline metric of its experiment via b.ReportMetric, in addition to
// wall-clock time.
//
// Regenerate the full-scale tables with: go run ./cmd/localbench
package locality_test

import (
	"strconv"
	"testing"

	"locality"
	"locality/internal/harness"
)

// runExperiment executes a driver b.N times and returns the last table.
func runExperiment(b *testing.B, id string) *harness.Table {
	b.Helper()
	driver, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var t *harness.Table
	for i := 0; i < b.N; i++ {
		t = driver(harness.Config{Quick: true, Seed: 2016})
	}
	return t
}

// lastInt parses the cell at (last row, col) as a float metric.
func lastCell(b *testing.B, t *harness.Table, col int) float64 {
	b.Helper()
	if len(t.Rows) == 0 {
		b.Fatal("no rows")
	}
	row := t.Rows[len(t.Rows)-1]
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		b.Fatalf("cell %q not numeric: %v", row[col], err)
	}
	return v
}

// BenchmarkE1Separation reproduces the headline: randomized vs
// deterministic Δ-coloring round counts across the n sweep.
func BenchmarkE1Separation(b *testing.B) {
	t := runExperiment(b, "E1")
	b.ReportMetric(lastCell(b, t, 2), "rand-rounds")
	b.ReportMetric(lastCell(b, t, 4), "det-rounds")
}

// BenchmarkE2DeltaScaling reproduces the Δ sweep of the ColorBidding
// algorithm (Theorem 10).
func BenchmarkE2DeltaScaling(b *testing.B) {
	t := runExperiment(b, "E2")
	b.ReportMetric(lastCell(b, t, 2), "t10-rounds")
}

// BenchmarkE3Shattering reproduces the bad-component size measurements.
func BenchmarkE3Shattering(b *testing.B) {
	t := runExperiment(b, "E3")
	b.ReportMetric(lastCell(b, t, 5), "max-component")
}

// BenchmarkE4ZeroRound reproduces the Theorem 4 base case (0-round failure
// floor 1/Δ²).
func BenchmarkE4ZeroRound(b *testing.B) {
	t := runExperiment(b, "E4")
	b.ReportMetric(lastCell(b, t, 1), "minimax-failure")
}

// BenchmarkE5RandFromDet reproduces the Theorem 5 construction's failure
// rate vs the n²/2^b bound.
func BenchmarkE5RandFromDet(b *testing.B) {
	t := runExperiment(b, "E5")
	b.ReportMetric(lastCell(b, t, 4), "failure-rate")
}

// BenchmarkE6Speedup reproduces the Theorem 6 transform measurements.
func BenchmarkE6Speedup(b *testing.B) {
	t := runExperiment(b, "E6")
	b.ReportMetric(lastCell(b, t, 3), "transformed-rounds")
}

// BenchmarkE7Dichotomy reproduces the Δ=2 dichotomy (Θ(n) vs O(log* n)).
func BenchmarkE7Dichotomy(b *testing.B) {
	t := runExperiment(b, "E7")
	b.ReportMetric(lastCell(b, t, 1), "2color-rounds")
	b.ReportMetric(lastCell(b, t, 2), "3color-rounds")
}

// BenchmarkE8Derandomization reproduces the exhaustive Theorem 3 search.
func BenchmarkE8Derandomization(b *testing.B) {
	runExperiment(b, "E8")
}

// BenchmarkE9Linial reproduces the palette-trajectory/log* measurements.
func BenchmarkE9Linial(b *testing.B) {
	t := runExperiment(b, "E9")
	b.ReportMetric(lastCell(b, t, 2), "rounds")
}

// BenchmarkE10MISMatching reproduces the MIS/matching round comparisons.
func BenchmarkE10MISMatching(b *testing.B) {
	t := runExperiment(b, "E10")
	b.ReportMetric(lastCell(b, t, 2), "luby-rounds")
	b.ReportMetric(lastCell(b, t, 3), "detmis-rounds")
}

// BenchmarkE11Sinkless reproduces the sinkless-orientation convergence
// measurements.
func BenchmarkE11Sinkless(b *testing.B) {
	t := runExperiment(b, "E11")
	b.ReportMetric(lastCell(b, t, 3), "last-sink-step")
}

// BenchmarkKernelSequential measures the raw simulator throughput
// (node-steps per second) on a flood algorithm — the substrate cost under
// every experiment.
func BenchmarkKernelSequential(b *testing.B) {
	benchKernel(b, locality.EngineSequential)
}

// BenchmarkKernelConcurrent measures the goroutine-per-node engine on the
// same workload.
func BenchmarkKernelConcurrent(b *testing.B) {
	benchKernel(b, locality.EngineConcurrent)
}

func benchKernel(b *testing.B, engine locality.Engine) {
	r := locality.NewRand(1)
	g := locality.RandomTree(2048, 4, r)
	assignment := locality.ShuffledIDs(2048, r)
	factory := locality.NewLinialFactory(locality.LinialOptions{
		InitialPalette: 2048, Delta: 4,
	})
	arena := &locality.Arena{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := locality.Run(g, locality.RunConfig{IDs: assignment, Engine: engine, Arena: arena}, factory)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rounds == 0 {
			b.Fatal("no rounds")
		}
	}
}

// BenchmarkE12FaultTolerance reproduces the graceful-degradation table
// (fault plans vs constraint satisfaction and retry attempts).
func BenchmarkE12FaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		driver, ok := harness.ByIDSupplementary("E12")
		if !ok {
			b.Fatal("E12 missing")
		}
		driver(harness.Config{Quick: true, Seed: 2016})
	}
}

// BenchmarkE13Indistinguishability reproduces the high-girth-balls-are-trees
// check.
func BenchmarkE13Indistinguishability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		driver, ok := harness.ByIDSupplementary("E13")
		if !ok {
			b.Fatal("E13 missing")
		}
		driver(harness.Config{Quick: true, Seed: 2016})
	}
}

// BenchmarkA1KWvsSweep reproduces the color-reduction ablation.
func BenchmarkA1KWvsSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		driver, _ := harness.ByIDSupplementary("A1")
		driver(harness.Config{Quick: true, Seed: 2016})
	}
}

// BenchmarkA2PeelThreshold reproduces the peeling-threshold ablation.
func BenchmarkA2PeelThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		driver, _ := harness.ByIDSupplementary("A2")
		driver(harness.Config{Quick: true, Seed: 2016})
	}
}

// BenchmarkA3SizeBound reproduces the Phase-2 size-bound ablation.
func BenchmarkA3SizeBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		driver, _ := harness.ByIDSupplementary("A3")
		driver(harness.Config{Quick: true, Seed: 2016})
	}
}
